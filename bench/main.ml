(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus the extra ablations listed in DESIGN.md and a
   Bechamel microbenchmark section for the core data structures.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe fig7 fig9  -- run selected experiments

   Absolute numbers come from the simulated platform (see EXPERIMENTS.md
   for the calibration); the shapes are what reproduce the paper. *)

module Fixtures = Hinfs_harness.Fixtures
module Experiment = Hinfs_harness.Experiment
module Report = Hinfs_harness.Report
module Workload = Hinfs_workloads.Workload
module Filebench = Hinfs_workloads.Filebench
module Fio = Hinfs_workloads.Fio
module Postmark = Hinfs_workloads.Postmark
module Tpcc = Hinfs_workloads.Tpcc
module Kernel = Hinfs_workloads.Kernel
module Trace = Hinfs_trace.Trace
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Profile = Hinfs_harness.Profile
module Ojson = Hinfs_obs.Ojson
module Obs = Hinfs_obs.Obs
module Hist = Hinfs_obs.Hist
module Server = Hinfs_server.Server
module Clients = Hinfs_server.Clients
module Ofcache = Hinfs_server.Ofcache

let ppf = Fmt.stdout

(* `--shards=N` shards the HiNFS hot state in every cell this runner
   mounts (per-shard buffer pools, journal regions, allocator ranges).
   Default 1 keeps the committed BENCH_HINFS.json byte-stable; the shard
   scalability sweep in [baseline] sets its own per-cell shard counts
   regardless of this flag. *)
let cli_shards =
  Array.fold_left
    (fun acc arg ->
      match String.index_opt arg '=' with
      | Some i when String.sub arg 0 i = "--shards" ->
        int_of_string (String.sub arg (i + 1) (String.length arg - i - 1))
      | _ -> acc)
    1 Sys.argv

let spec = { Experiment.default_spec with Experiment.shards = cli_shards }

(* Shorter windows for the large grids. *)
let grid_duration = 100_000_000L
let sweep_duration = 60_000_000L

let filebench_workloads () =
  [
    ("fileserver", fun () -> Filebench.fileserver ());
    ("webserver", fun () -> Filebench.webserver ());
    ("webproxy", fun () -> Filebench.webproxy ());
    ("varmail", fun () -> Filebench.varmail ());
  ]

let ratio_to_pmfs rows =
  (* rows: (fs_name, ops_per_sec); normalise to the pmfs row. *)
  match List.assoc_opt "pmfs" rows with
  | Some pmfs when pmfs > 0.0 -> List.map (fun (fs, v) -> (fs, v /. pmfs)) rows
  | _ -> rows

(* ------------------------------------------------------------------ *)
(* Figure 1: time breakdown of fio on PMFS across I/O sizes.           *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  Report.heading ppf
    "Figure 1: time breakdown of fio on PMFS (r:w = 1:2, random I/O)";
  let sizes = [ 64; 1024; 4096; 16384; 65536; 262144 ] in
  let rows =
    List.map
      (fun io_size ->
        let workload =
          Fio.make ~params:{ Fio.default_params with Fio.io_size } ()
        in
        let _result, stats =
          Experiment.run_workload ~spec ~threads:1 ~duration:grid_duration
            Fixtures.Pmfs_fs workload
        in
        let total = Int64.to_float (Stats.total_time stats) in
        let pct cat =
          if total <= 0.0 then 0.0
          else 100.0 *. Int64.to_float (Stats.time stats cat) /. total
        in
        let other =
          pct Stats.Other +. pct Stats.Journal +. pct Stats.Block_layer
        in
        [
          Fmt.str "%d B" io_size;
          Report.f1 (pct Stats.Read_access);
          Report.f1 (pct Stats.Write_access);
          Report.f1 other;
        ])
      sizes
  in
  Report.table ppf
    ~header:[ "io size"; "read access %"; "write access %"; "others %" ]
    rows;
  Fmt.pf ppf
    "@.Paper: write access dominates for I/O >= 4 KB (>80%%), and still >= \
     16%% at 64 B.@."

(* ------------------------------------------------------------------ *)
(* Figure 2: percentage of fsync bytes per workload.                   *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  Report.heading ppf "Figure 2: percentage of fsync bytes per workload";
  let fsync_ratio_of stats =
    ( 100.0 *. Stats.fsync_byte_ratio stats,
      Int64.to_float (Stats.user_bytes_written stats) /. 1048576.0 )
  in
  let micro =
    List.map
      (fun (name, make) ->
        let _r, stats =
          Experiment.run_workload ~spec ~threads:2 ~duration:grid_duration
            Fixtures.Pmfs_fs (make ())
        in
        (name, fsync_ratio_of stats))
      (filebench_workloads ())
  in
  let jobs =
    List.map
      (fun (name, job) ->
        let _r, stats = Experiment.run_job ~spec Fixtures.Pmfs_fs job in
        (name, fsync_ratio_of stats))
      [
        ("postmark", Postmark.make ());
        ("tpcc", Tpcc.make ());
        ("kernel-make", Kernel.make_build ());
      ]
  in
  let traces =
    List.map
      (fun trace ->
        let _r, stats = Experiment.run_trace Fixtures.Pmfs_fs trace in
        (Trace.name trace, fsync_ratio_of stats))
      (Trace.all ())
  in
  let rows =
    List.map
      (fun (name, (ratio, mb)) -> [ name; Report.f1 ratio; Report.f1 mb ])
      (micro @ jobs @ traces)
  in
  Report.table ppf ~header:[ "workload"; "fsync bytes %"; "MB written" ] rows;
  Fmt.pf ppf
    "@.Paper: TPC-C > 90%%, varmail/facebook high, LASR = 0%%, \
     fileserver/webproxy/kernel ~ 0%%.@."

(* ------------------------------------------------------------------ *)
(* Figure 6: Buffer Benefit Model accuracy.                            *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  Report.heading ppf "Figure 6: Buffer Benefit Model accuracy";
  let varmail =
    let _r, stats =
      Experiment.run_workload ~spec ~threads:2 ~duration:grid_duration
        Fixtures.Hinfs_fs (Filebench.varmail ())
    in
    ("varmail", 100.0 *. Stats.bbm_accuracy stats, Stats.bbm_predictions stats)
  in
  let tpcc =
    let _r, stats = Experiment.run_job ~spec Fixtures.Hinfs_fs (Tpcc.make ()) in
    ("tpcc", 100.0 *. Stats.bbm_accuracy stats, Stats.bbm_predictions stats)
  in
  let traces =
    List.map
      (fun trace ->
        let _r, stats = Experiment.run_trace Fixtures.Hinfs_fs trace in
        ( Trace.name trace,
          100.0 *. Stats.bbm_accuracy stats,
          Stats.bbm_predictions stats ))
      [ Trace.usr0 (); Trace.usr1 (); Trace.facebook () ]
  in
  let rows =
    List.map
      (fun (name, accuracy, n) -> [ name; Report.f1 accuracy; string_of_int n ])
      ([ varmail; tpcc ] @ traces)
  in
  Report.table ppf ~header:[ "workload"; "accuracy %"; "predictions" ] rows;
  Fmt.pf ppf "@.Paper: accuracy close to 90%% even in the worst case.@."

(* ------------------------------------------------------------------ *)
(* Figure 7: overall filebench throughput, normalised to PMFS.         *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  Report.heading ppf
    "Figure 7: overall throughput (filebench, 4 threads), normalised to PMFS";
  List.iter
    (fun (wname, make) ->
      let rows =
        List.map
          (fun kind ->
            let result, _stats =
              Experiment.run_workload ~spec ~duration:grid_duration kind
                (make ())
            in
            (Fixtures.name kind, result.Workload.ops_per_sec))
          Fixtures.paper_five
      in
      let normalised = ratio_to_pmfs rows in
      Report.subheading ppf wname;
      Report.table ppf ~header:[ "fs"; "ops/s"; "vs pmfs"; "" ]
        (List.map2
           (fun (fs, ops) (_, ratio) ->
             [
               fs;
               Report.f0 ops;
               Report.f2 ratio;
               Report.bar ratio ~max_value:3.0 ~width:30;
             ])
           rows normalised);
      Fmt.pf ppf "@.")
    (filebench_workloads ());
  Fmt.pf ppf
    "Paper: HiNFS best everywhere (up to +184%% on fileserver); EXT+NVMMBD \
     competitive with PMFS only on webproxy; HiNFS ~ PMFS on webserver and \
     varmail.@."

(* ------------------------------------------------------------------ *)
(* Figure 7b: the nvcache durability tier on an fsync-heavy workload.  *)
(* ------------------------------------------------------------------ *)

(* Fig-7-style cells for the nvcache comparison (DESIGN.md §7): a
   sync-mounted ext4 pays a full bio + journal commit per durable write;
   the nvlog/nvpage tiers absorb the same bios into NVMM and destage in
   the background; HiNFS writes NVMM natively and is the upper bound.
   Varmail is the fsync-heavy workload of the set. *)
let fig7nv () =
  Report.heading ppf
    "Figure 7b: varmail over the nvcache tier (fsync-heavy, 2 threads)";
  let kinds =
    [
      Fixtures.Ext4_sync;
      Fixtures.Ext2_nvlog;
      Fixtures.Ext4_nvlog;
      Fixtures.Ext4_nvpage;
      Fixtures.Hinfs_fs;
    ]
  in
  let rows =
    List.map
      (fun kind ->
        let result, _stats, obs =
          Experiment.run_workload_obs ~spec ~threads:2 ~duration:grid_duration
            kind
            (Filebench.varmail ())
        in
        ( Fixtures.name kind,
          result.Workload.ops_per_sec,
          Obs.hist obs Obs.Op_write,
          Obs.hist obs Obs.Op_fsync ))
      kinds
  in
  let max_ops =
    List.fold_left (fun m (_, ops, _, _) -> Float.max m ops) 1.0 rows
  in
  Report.table ppf
    ~header:
      [ "fs"; "ops/s"; "write p50"; "write p99"; "fsync p99"; "" ]
    (List.map
       (fun (fs, ops, w, f) ->
         [
           fs;
           Report.f0 ops;
           string_of_int w.Hist.p50;
           string_of_int w.Hist.p99;
           string_of_int f.Hist.p99;
           Report.bar ops ~max_value:max_ops ~width:30;
         ])
       rows);
  Fmt.pf ppf
    "@.Every mount here is synchronous, so the durable op is the write \
     itself. The tier absorbs each sync bio as an NVMM append + fence: \
     ext2+nvlog cuts write p50 ~3x against the bare sync mount; ext4 keeps \
     its journal overhead but still gains from absorb + write-around.@."

(* ------------------------------------------------------------------ *)
(* Figure 8: scalability, 1-10 threads.                                *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  Report.heading ppf "Figure 8: throughput for 1-10 threads (ops/s)";
  let thread_points = [ 1; 2; 4; 6; 8; 10 ] in
  List.iter
    (fun (wname, make) ->
      Report.subheading ppf wname;
      let rows =
        List.map
          (fun kind ->
            let cells =
              List.map
                (fun threads ->
                  let result, _ =
                    Experiment.run_workload ~spec ~threads
                      ~duration:sweep_duration kind (make ())
                  in
                  Report.f0 result.Workload.ops_per_sec)
                thread_points
            in
            Fixtures.name kind :: cells)
          Fixtures.paper_five
      in
      Report.table ppf
        ~header:("fs" :: List.map (fun t -> Fmt.str "%dthr" t) thread_points)
        rows;
      Fmt.pf ppf "@.")
    (filebench_workloads ());
  Fmt.pf ppf
    "Paper: HiNFS scales best; PMFS/EXT4-DAX saturate on NVMM write \
     bandwidth for fileserver; webserver/varmail track PMFS.@."

(* ------------------------------------------------------------------ *)
(* Figure 9: sensitivity to I/O size (fileserver), incl. HiNFS-NCLFW.  *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  Report.heading ppf
    "Figure 9: fileserver sensitivity to I/O size (a: ops/s, b: NVMM write \
     size)";
  let sizes = [ 64; 512; 1024; 4096; 16384; 65536 ] in
  let kinds = [ Fixtures.Pmfs_fs; Fixtures.Hinfs_nclfw; Fixtures.Hinfs_fs ] in
  let results =
    List.map
      (fun io_size ->
        let make () =
          Filebench.fileserver
            ~params:
              {
                Filebench.default_params with
                Filebench.io_size;
                Filebench.append_size = min io_size 16384;
              }
            ()
        in
        let cells =
          List.map
            (fun kind ->
              let result, stats =
                Experiment.run_workload ~spec ~duration:sweep_duration kind
                  (make ())
              in
              ( result.Workload.ops_per_sec,
                Int64.to_float (Stats.nvmm_bytes_written stats) /. 1048576.0 ))
            kinds
        in
        (io_size, cells))
      sizes
  in
  Report.subheading ppf "(a) throughput, ops/s";
  Report.table ppf
    ~header:("io size" :: List.map Fixtures.name kinds)
    (List.map
       (fun (io, cells) ->
         Fmt.str "%d B" io :: List.map (fun (ops, _) -> Report.f0 ops) cells)
       results);
  Report.subheading ppf "(b) NVMM write size, MB";
  Report.table ppf
    ~header:("io size" :: List.map Fixtures.name kinds)
    (List.map
       (fun (io, cells) ->
         Fmt.str "%d B" io :: List.map (fun (_, mb) -> Report.f1 mb) cells)
       results);
  (* Supplementary panel: the fileserver above streams files sequentially,
     so buffered blocks are fully dirty by writeback time and CLFW's
     granularity has little to bite on. Random sub-block writes over a
     working set larger than the buffer are the paper's motivating case
     ("many small block-unaligned lazy-persistent writes"): evicted blocks
     are sparsely dirty, and NCLFW flushes (and fetches) whole blocks. *)
  Report.subheading ppf
    "(c) random sub-block writes (fio, 64 MB file > 26 MB buffer): NVMM MB \
     written";
  let fio_sizes = [ 64; 256; 1024; 4096 ] in
  let fio_rows =
    List.map
      (fun io_size ->
        let make () =
          Fio.make
            ~params:
              {
                Fio.default_params with
                Fio.io_size;
                Fio.file_size = 64 * 1024 * 1024;
                Fio.read_fraction = 0.0;
              }
            ()
        in
        let cells =
          List.map
            (fun kind ->
              let _result, stats =
                Experiment.run_workload ~spec ~duration:sweep_duration kind
                  (make ())
              in
              Int64.to_float (Stats.nvmm_bytes_written stats) /. 1048576.0)
            [ Fixtures.Hinfs_nclfw; Fixtures.Hinfs_fs ]
        in
        match cells with
        | [ nclfw; clfw ] ->
          [
            Fmt.str "%d B" io_size;
            Report.f1 nclfw;
            Report.f1 clfw;
            Report.f2 (nclfw /. Float.max clfw 0.001);
          ]
        | _ -> assert false)
      fio_sizes
  in
  Report.table ppf
    ~header:[ "io size"; "hinfs-nclfw MB"; "hinfs MB"; "nclfw/clfw" ]
    fio_rows;
  Fmt.pf ppf
    "@.Paper: CLFW cuts NVMM write size sharply for sub-block I/O (~30%% \
     ops/s gain); the gap closes at and above 4 KB; HiNFS's lead over PMFS \
     grows with I/O size.@."

(* ------------------------------------------------------------------ *)
(* Figure 10: sensitivity to the DRAM buffer size.                     *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  Report.heading ppf
    "Figure 10: throughput vs DRAM buffer size (fraction of workload size)";
  let ratios = [ 0.1; 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  let cases =
    [
      ("fileserver", (fun () -> Filebench.fileserver ()), 64 * 1024 * 1024);
      ("webproxy", (fun () -> Filebench.webproxy ()), 16 * 1024 * 1024);
    ]
  in
  List.iter
    (fun (wname, make, workload_size) ->
      Report.subheading ppf wname;
      let reference kind =
        let result, _ =
          Experiment.run_workload ~spec ~duration:sweep_duration kind (make ())
        in
        result.Workload.ops_per_sec
      in
      let pmfs = reference Fixtures.Pmfs_fs in
      let ext2 = reference Fixtures.Ext2_nvmmbd in
      let rows =
        List.map
          (fun ratio ->
            let buffer_bytes =
              max (64 * 4096)
                (int_of_float (ratio *. float_of_int workload_size))
            in
            let spec = { spec with Experiment.buffer_bytes } in
            let result, _ =
              Experiment.run_workload ~spec ~duration:sweep_duration
                Fixtures.Hinfs_fs (make ())
            in
            [
              Report.f1 ratio;
              Report.f0 result.Workload.ops_per_sec;
              Report.f2 (result.Workload.ops_per_sec /. pmfs);
            ])
          ratios
      in
      Report.table ppf
        ~header:[ "buffer/workload"; "hinfs ops/s"; "vs pmfs" ]
        rows;
      Fmt.pf ppf "reference: pmfs %s ops/s, ext2+nvmmbd %s ops/s@.@."
        (Report.f0 pmfs) (Report.f0 ext2))
    cases;
  Fmt.pf ppf
    "Paper: fileserver improves steadily with buffer size; webproxy is \
     insensitive (strong locality + short-lived files).@."

(* ------------------------------------------------------------------ *)
(* Figure 11: sensitivity to NVMM write latency (single thread).       *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  Report.heading ppf
    "Figure 11: throughput vs NVMM write latency (1 thread, ops/s)";
  let latencies = [ 50; 100; 200; 400; 800 ] in
  let kinds = [ Fixtures.Pmfs_fs; Fixtures.Ext2_nvmmbd; Fixtures.Hinfs_fs ] in
  List.iter
    (fun (wname, make) ->
      Report.subheading ppf wname;
      let rows =
        List.map
          (fun kind ->
            let cells =
              List.map
                (fun nvmm_write_ns ->
                  let spec = { spec with Experiment.nvmm_write_ns } in
                  let result, _ =
                    Experiment.run_workload ~spec ~threads:1
                      ~duration:sweep_duration kind (make ())
                  in
                  Report.f0 result.Workload.ops_per_sec)
                latencies
            in
            Fixtures.name kind :: cells)
          kinds
      in
      Report.table ppf
        ~header:("fs" :: List.map (fun l -> Fmt.str "%dns" l) latencies)
        rows;
      Fmt.pf ppf "@.")
    [
      ("fileserver", fun () -> Filebench.fileserver ());
      ("webproxy", fun () -> Filebench.webproxy ());
    ];
  Fmt.pf ppf
    "Paper: HiNFS's advantage grows with latency (up to ~6x over PMFS on \
     webproxy at 800 ns) and it is never worse, even at 50 ns.@."

(* ------------------------------------------------------------------ *)
(* Figure 12: trace replay, time breakdown by op class.                *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  Report.heading ppf
    "Figure 12: trace replay time (normalised to PMFS; \
     read/write/unlink/fsync breakdown in ms)";
  let kinds = Fixtures.paper_five @ [ Fixtures.Hinfs_wb ] in
  List.iter
    (fun trace ->
      Report.subheading ppf (Trace.name trace);
      let results =
        List.map
          (fun kind ->
            let r, _stats = Experiment.run_trace kind trace in
            (kind, r))
          kinds
      in
      let pmfs_total =
        match List.find_opt (fun (k, _) -> k = Fixtures.Pmfs_fs) results with
        | Some (_, r) -> Int64.to_float r.Trace.r_elapsed_ns
        | None -> 1.0
      in
      Report.table ppf
        ~header:
          [ "fs"; "total ms"; "vs pmfs"; "read"; "write"; "unlink"; "fsync" ]
        (List.map
           (fun (kind, r) ->
             [
               Fixtures.name kind;
               Report.ms r.Trace.r_elapsed_ns;
               Report.f2 (Int64.to_float r.Trace.r_elapsed_ns /. pmfs_total);
               Report.ms r.Trace.r_read_ns;
               Report.ms r.Trace.r_write_ns;
               Report.ms r.Trace.r_unlink_ns;
               Report.ms r.Trace.r_fsync_ns;
             ])
           results);
      Fmt.pf ppf "@.")
    (Trace.all ());
  Fmt.pf ppf
    "Paper: HiNFS cuts execution time ~35-38%% vs PMFS on Usr0/Usr1/LASR \
     (write time drops most) and matches PMFS on Facebook; HiNFS-WB is \
     worse than HiNFS on sync-heavy traces. See EXPERIMENTS.md for where \
     our additive-latency model deviates on the WB ablation.@."

(* ------------------------------------------------------------------ *)
(* Figure 13: macro benchmarks, elapsed time normalised to PMFS.       *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  Report.heading ppf
    "Figure 13: macro benchmark elapsed time (normalised to PMFS)";
  let kinds = Fixtures.paper_five @ [ Fixtures.Hinfs_wb ] in
  List.iter
    (fun (jname, job) ->
      Report.subheading ppf jname;
      let results =
        List.map
          (fun kind ->
            let r, _ = Experiment.run_job ~spec kind job in
            (kind, r))
          kinds
      in
      let pmfs_total =
        match List.find_opt (fun (k, _) -> k = Fixtures.Pmfs_fs) results with
        | Some (_, r) -> Int64.to_float r.Workload.jr_elapsed_ns
        | None -> 1.0
      in
      Report.table ppf ~header:[ "fs"; "elapsed ms"; "vs pmfs"; "" ]
        (List.map
           (fun (kind, r) ->
             let ratio =
               Int64.to_float r.Workload.jr_elapsed_ns /. pmfs_total
             in
             [
               Fixtures.name kind;
               Report.ms r.Workload.jr_elapsed_ns;
               Report.f2 ratio;
               Report.bar ratio ~max_value:4.0 ~width:30;
             ])
           results);
      Fmt.pf ppf "@.")
    [
      ("postmark", Postmark.make ());
      ("tpcc", Tpcc.make ());
      ("kernel-grep", Kernel.grep ());
      ("kernel-make", Kernel.make_build ());
    ];
  Fmt.pf ppf
    "Paper: HiNFS cuts Postmark/Kernel-Make time by ~60/64%%; TPC-C and \
     Kernel-Grep are level with PMFS; EXT2 beats EXT4 (journal overhead).@."

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3.                                                     *)
(* ------------------------------------------------------------------ *)

let tab2 () =
  Report.heading ppf "Table 2: emulated platform configuration";
  let config = Experiment.config_of spec in
  Fmt.pf ppf "%a@." Config.pp config;
  Fmt.pf ppf
    "HiNFS buffer %d MB; EXT page cache %d pages; default %d worker \
     threads; measurement window %.0f ms (virtual).@."
    (spec.Experiment.buffer_bytes / 1048576)
    spec.Experiment.cache_pages spec.Experiment.threads
    (Int64.to_float spec.Experiment.duration_ns /. 1e6)

let tab3 () =
  Report.heading ppf "Table 3: file systems under comparison";
  Report.table ppf ~header:[ "name"; "description" ]
    (List.map
       (fun kind -> [ Fixtures.name kind; Fixtures.description kind ])
       (Fixtures.paper_five
       @ [ Fixtures.Hinfs_nclfw; Fixtures.Hinfs_wb; Fixtures.Hinfs_fifo;
           Fixtures.Hinfs_lfu ]))

(* ------------------------------------------------------------------ *)
(* Extra ablation: LRW vs FIFO replacement.                            *)
(* ------------------------------------------------------------------ *)

let ablate_repl () =
  Report.heading ppf "Ablation: LRW vs FIFO buffer replacement";
  let rows =
    List.concat_map
      (fun (wname, make) ->
        List.map
          (fun kind ->
            let result, stats =
              Experiment.run_workload ~spec ~duration:sweep_duration kind
                (make ())
            in
            [
              wname;
              Fixtures.name kind;
              Report.f0 result.Workload.ops_per_sec;
              Report.pct (Stats.buffer_write_hit_ratio stats);
            ])
          [ Fixtures.Hinfs_fs; Fixtures.Hinfs_fifo; Fixtures.Hinfs_lfu ])
      [
        ("fileserver", fun () -> Filebench.fileserver ());
        ("webproxy", fun () -> Filebench.webproxy ());
      ]
  in
  Report.table ppf ~header:[ "workload"; "policy"; "ops/s"; "write hits" ] rows;
  Fmt.pf ppf
    "@.The paper argues LRW suffices given skewed workloads (§3.2) and \
     leaves LFU/ARC/2Q to future work; FIFO is the strawman and sampled \
     LFU the 'sophisticated' candidate.@."

(* ------------------------------------------------------------------ *)
(* Serve: request-level fan-in through lib/server, 64 -> 4096 clients. *)
(* ------------------------------------------------------------------ *)

(* One cell: a simulated client fleet (zipf-hot reads, mixed
   stable/unstable writes with COMMITs, open/close churn) against the
   serving layer over HiNFS with [shards] hot-state shards. Per-fleet
   request counts shrink as the fleet grows so the grid stays fast, and
   the server's worker pool scales with the fleet the way a real
   server's thread pool would. Each cell's seed derives from the
   (clients, shards) pair, so the artifact stays byte-stable run to
   run; new cell names are unshared, so bench_compare does not gate
   them against pre-serve baselines. *)
let serve_points =
  [
    (64, 1); (64, 8); (256, 1); (256, 8); (1024, 1); (1024, 8); (4096, 1);
    (4096, 8);
  ]

let serve_cell_name ~clients ~shards =
  Fmt.str "serve-c%04d-s%d" clients shards

let serve_cell ~clients ~shards =
  let cell_seed =
    Int64.add spec.Experiment.seed
      (Int64.of_int ((clients * 131) + (shards * 0x9E3779)))
  in
  let serve_spec =
    { spec with Experiment.shards; Experiment.seed = cell_seed }
  in
  let cfg =
    {
      Clients.default with
      Clients.clients;
      ops_per_client = max 6 (3072 / clients);
      shards;
      seed = cell_seed;
    }
  in
  let workers = min 256 (max 8 (clients / 8)) in
  let (total, elapsed_ns), _stats, obs =
    Experiment.with_env_obs serve_spec Fixtures.Hinfs_fs (fun env ->
        let srv =
          Server.create ~workers ~cache_cap:(2 * workers)
            env.Fixtures.engine env.Fixtures.handle
        in
        Server.start srv;
        let t0 = Hinfs_sim.Proc.now () in
        let total = Clients.run env.Fixtures.engine srv cfg in
        let t1 = Hinfs_sim.Proc.now () in
        (* Close the cached opens before teardown unmounts the tree. *)
        Ofcache.drop_all (Server.cache srv);
        Server.stop srv;
        (total, Int64.sub t1 t0))
  in
  (total, elapsed_ns, obs)

let serve () =
  Report.heading ppf
    "Serve: client fan-in through the serving layer (req/s, per-class \
     tails in ns)";
  let rows =
    List.map
      (fun (clients, shards) ->
        let total, elapsed_ns, obs = serve_cell ~clients ~shards in
        let secs = Int64.to_float elapsed_ns /. 1e9 in
        let rps = if secs > 0.0 then float_of_int total /. secs else 0.0 in
        let rd = Obs.hist obs Obs.Req_read in
        let wr = Obs.hist obs Obs.Req_write in
        let cm = Obs.hist obs Obs.Req_commit in
        let q = Obs.hist obs Obs.Srv_queue in
        [
          string_of_int clients;
          string_of_int shards;
          string_of_int total;
          Report.f0 rps;
          string_of_int rd.Hist.p99;
          string_of_int wr.Hist.p99;
          string_of_int cm.Hist.p999;
          string_of_int q.Hist.p99;
        ])
      serve_points
  in
  Report.table ppf
    ~header:
      [
        "clients"; "shards"; "reqs"; "req/s"; "read p99"; "write p99";
        "commit p999"; "queue p99";
      ]
    rows;
  Fmt.pf ppf
    "@.Request latency is dominated by the queue wait once the fleet \
     outgrows the worker pool; sharding the hot state moves the knee \
     right until the NVMM bandwidth Resource saturates. srv.* phase \
     rows in BENCH_HINFS.json break each request into queue / decode / \
     dispatch / encode / flush.@."

(* ------------------------------------------------------------------ *)
(* Baseline: machine-readable perf summary (BENCH_HINFS.json).         *)
(* ------------------------------------------------------------------ *)

(* Short obs-enabled runs over the two headline file systems. Everything
   in the artifact derives from the virtual clock, so two invocations with
   the same seed write byte-identical files — scripts/bench_check.sh diffs
   a pair of runs to enforce that. Set BENCH_HINFS_OUT to redirect the
   output path. *)
let baseline () =
  Report.heading ppf
    "Baseline: machine-readable latency/throughput summary (BENCH_HINFS.json)";
  let duration = 50_000_000L in
  let kinds = [ Fixtures.Hinfs_fs; Fixtures.Pmfs_fs ] in
  let rate_cells =
    [
      ("fileserver", fun () -> Filebench.fileserver ());
      ("varmail", fun () -> Filebench.varmail ());
      ("fio", fun () -> Fio.make ());
    ]
  in
  let experiments =
    List.concat_map
      (fun kind ->
        let fs = Fixtures.name kind in
        let rates =
          List.map
            (fun (wname, make) ->
              let result, _stats, obs =
                Experiment.run_workload_obs ~spec ~threads:2 ~duration kind
                  (make ())
              in
              Report.subheading ppf (Fmt.str "%s / %s" wname fs);
              Report.latency ppf obs;
              Report.gauges ppf obs;
              Fmt.pf ppf "@.";
              Profile.experiment_json ~name:wname ~fs
                ~ops:result.Workload.ops
                ~elapsed_ns:result.Workload.elapsed_ns obs)
            rate_cells
        in
        let jobs =
          List.map
            (fun (jname, job) ->
              let r, _stats, obs = Experiment.run_job_obs ~spec kind job in
              Report.subheading ppf (Fmt.str "%s / %s" jname fs);
              Report.latency ppf obs;
              Report.gauges ppf obs;
              Fmt.pf ppf "@.";
              Profile.experiment_json ~name:jname ~fs
                ~ops:r.Workload.jr_ops ~elapsed_ns:r.Workload.jr_elapsed_ns
                obs)
            [ ("postmark", Postmark.make ()) ]
        in
        rates @ jobs)
      kinds
  in
  (* Nvcache comparison cells (Fig. 7b): the same fsync-heavy varmail run
     over a bare sync-mounted ext4 and both cache-tier designs, so the
     committed artifact records fsync/write latency with and without the
     tier. *)
  let nv_experiments =
    List.map
      (fun kind ->
        let fs = Fixtures.name kind in
        let result, _stats, obs =
          Experiment.run_workload_obs ~spec ~threads:2 ~duration kind
            (Filebench.varmail ())
        in
        Report.subheading ppf (Fmt.str "varmail / %s" fs);
        Report.latency ppf obs;
        Report.gauges ppf obs;
        Fmt.pf ppf "@.";
        Profile.experiment_json ~name:"varmail" ~fs ~ops:result.Workload.ops
          ~elapsed_ns:result.Workload.elapsed_ns obs)
      [
        Fixtures.Ext4_sync;
        Fixtures.Ext2_nvlog;
        Fixtures.Ext4_nvlog;
        Fixtures.Ext4_nvpage;
      ]
  in
  (* Snapshot-cost cell: the same fileserver run over the CoW substrate,
     where every op commits through a refcount fixpoint plus a fenced
     root-descriptor swap, next to the journal-mode pmfs fileserver cell
     above — the committed artifact records what CoW commit costs on a
     create/append-heavy workload. *)
  let cow_experiments =
    List.map
      (fun kind ->
        let fs = Fixtures.name kind in
        let result, _stats, obs =
          Experiment.run_workload_obs ~spec ~threads:2 ~duration kind
            (Filebench.fileserver ())
        in
        Report.subheading ppf (Fmt.str "fileserver / %s" fs);
        Report.latency ppf obs;
        Report.gauges ppf obs;
        Fmt.pf ppf "@.";
        Profile.experiment_json ~name:"fileserver" ~fs
          ~ops:result.Workload.ops ~elapsed_ns:result.Workload.elapsed_ns obs)
      [ Fixtures.Cow_fs ]
  in
  (* Shard scalability sweep (1 -> 512 simulated processes): each process
     owns one file in one of [shards] directories; directories are placed
     round-robin across shards at mkfs, so the processes spread over every
     shard's buffer pool, journal region, and allocator ranges. The op mix
     is small buffered writes with periodic fsync (journal commits) and an
     occasional create+unlink (allocator churn) — the metadata-heavy shape
     whose single-shard bottleneck is the journal tail lock and the shared
     pool, not data bandwidth. Ops/sec should rise with the shard count
     until the NVMM bandwidth Resource is the bottleneck and the curve
     flattens. Each cell's RNG streams derive from the run seed, the shard
     count, and the worker's thread id, so the artifact stays byte-stable
     run to run. New cell names: bench_compare treats them as unshared
     (not gated) against pre-shard baselines. *)
  let sweep_workload ~procs ~dirs =
    let file_span = 64 * 1024 in
    let io = 4096 in
    let fds = Array.make procs (-1) in
    {
      Workload.name = Fmt.str "shardmix-p%d" procs;
      setup =
        (fun h _rng ->
          for d = 0 to dirs - 1 do
            h.Hinfs_vfs.Vfs.mkdir (Fmt.str "/s%d" d)
          done;
          let chunk = Bytes.make file_span 's' in
          for i = 0 to procs - 1 do
            let path = Fmt.str "/s%d/f%d" (i mod dirs) i in
            let fd = h.Hinfs_vfs.Vfs.open_ path Hinfs_vfs.Types.creat in
            ignore (h.Hinfs_vfs.Vfs.write fd chunk file_span);
            h.Hinfs_vfs.Vfs.fsync fd;
            fds.(i) <- fd
          done);
      worker =
        (fun ctx ->
          let h = ctx.Workload.handle in
          let rng = ctx.Workload.rng in
          let i = ctx.Workload.thread_id in
          let fd = fds.(i) in
          let roll = Hinfs_sim.Rng.int rng 32 in
          if roll = 0 then begin
            (* Allocator churn in the process's own directory/shard. *)
            let scratch = Fmt.str "/s%d/tmp%d" (i mod dirs) i in
            let sfd = h.Hinfs_vfs.Vfs.open_ scratch Hinfs_vfs.Types.creat in
            ignore (h.Hinfs_vfs.Vfs.write sfd (Bytes.make io 't') io);
            h.Hinfs_vfs.Vfs.close sfd;
            h.Hinfs_vfs.Vfs.unlink scratch;
            1
          end
          else begin
            let off = Hinfs_sim.Rng.int rng (file_span / io) * io in
            ignore (h.Hinfs_vfs.Vfs.pwrite fd ~off (Bytes.make io 'w') io);
            if roll land 7 = 1 then h.Hinfs_vfs.Vfs.fsync fd;
            1
          end);
    }
  in
  let sweep_cells =
    List.map
      (fun p ->
        let shards = min p 64 in
        let sweep_spec =
          {
            spec with
            Experiment.threads = p;
            Experiment.shards;
            Experiment.seed =
              Int64.add spec.Experiment.seed
                (Int64.of_int (shards * 0x9E3779));
          }
        in
        let result, stats, obs =
          Experiment.run_workload_obs ~spec:sweep_spec ~threads:p
            ~duration:10_000_000L Fixtures.Hinfs_fs
            (sweep_workload ~procs:p ~dirs:shards)
        in
        let secs = Int64.to_float result.Workload.elapsed_ns /. 1e9 in
        let opsec = float_of_int result.Workload.ops /. secs in
        let mbps =
          Int64.to_float (Stats.nvmm_bytes_written stats) /. secs /. 1e6
        in
        Fmt.pf ppf
          "shard sweep: %4d procs / %2d shards: %9.0f ops/s, %7.1f MB/s \
           NVMM write@."
          p shards opsec mbps;
        Profile.experiment_json
          ~name:(Fmt.str "shard-sweep-p%03d" p)
          ~fs:"hinfs" ~ops:result.Workload.ops
          ~elapsed_ns:result.Workload.elapsed_ns obs)
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ]
  in
  (* Client-sweep cells (the serving layer): same cells as the [serve]
     experiment, recorded into the artifact with req.* classes in
     latency_ns (gated by bench_compare) and srv.* phases in phases_ns. *)
  let serve_cells =
    List.map
      (fun (clients, shards) ->
        let total, elapsed_ns, obs = serve_cell ~clients ~shards in
        let secs = Int64.to_float elapsed_ns /. 1e9 in
        Fmt.pf ppf
          "serve sweep: %4d clients / %d shards: %6d reqs, %9.0f req/s@."
          clients shards total
          (if secs > 0.0 then float_of_int total /. secs else 0.0);
        Profile.experiment_json
          ~name:(serve_cell_name ~clients ~shards)
          ~fs:"hinfs" ~ops:total ~elapsed_ns obs)
      serve_points
  in
  let experiments =
    experiments @ nv_experiments @ cow_experiments @ sweep_cells
    @ serve_cells
  in
  let config =
    [
      ("seed", Ojson.Int (Int64.to_int spec.Experiment.seed));
      ("threads", Ojson.Int 2);
      ("duration_ns", Ojson.Int (Int64.to_int duration));
      ("nvmm_write_ns", Ojson.Int spec.Experiment.nvmm_write_ns);
      ("buffer_bytes", Ojson.Int spec.Experiment.buffer_bytes);
      ("shards", Ojson.Int spec.Experiment.shards);
    ]
  in
  let json = Profile.bench_json ~config experiments in
  let path =
    match Sys.getenv_opt "BENCH_HINFS_OUT" with
    | Some p -> p
    | None -> "BENCH_HINFS.json"
  in
  Profile.write_file path json;
  Fmt.pf ppf "wrote %s (%d experiments)@." path (List.length experiments)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core data structures (wall clock).  *)
(* ------------------------------------------------------------------ *)

let micro () =
  Report.heading ppf "Microbenchmarks (Bechamel, real time per run)";
  let open Bechamel in
  let btree_insert =
    Test.make ~name:"btree.insert-1k"
      (Staged.stage (fun () ->
           let t = Hinfs_structures.Btree.create ~degree:16 () in
           for i = 0 to 999 do
             Hinfs_structures.Btree.insert t ((i * 7919) land 0xFFFF) i
           done))
  in
  let btree =
    let t = Hinfs_structures.Btree.create ~degree:16 () in
    for i = 0 to 9999 do
      Hinfs_structures.Btree.insert t i i
    done;
    t
  in
  let btree_find =
    Test.make ~name:"btree.find"
      (Staged.stage (fun () -> ignore (Hinfs_structures.Btree.find btree 7777)))
  in
  let radix =
    let t = Hinfs_structures.Radix_tree.create () in
    for i = 0 to 9999 do
      Hinfs_structures.Radix_tree.insert t i i
    done;
    t
  in
  let radix_find =
    Test.make ~name:"radix.find"
      (Staged.stage (fun () ->
           ignore (Hinfs_structures.Radix_tree.find radix 7777)))
  in
  let clbitmap_runs =
    let m =
      Hinfs.Clbitmap.add_range
        (Hinfs.Clbitmap.add_range Hinfs.Clbitmap.empty ~first:3 ~last:17)
        ~first:40 ~last:55
    in
    Test.make ~name:"clbitmap.iter_runs"
      (Staged.stage (fun () ->
           Hinfs.Clbitmap.iter_runs m ~nlines:64
             (fun ~first:_ ~count:_ ~set:_ -> ())))
  in
  let zipf_gen = Hinfs_sim.Zipf.create ~n:100_000 ~theta:0.9 in
  let zipf_rng = Hinfs_sim.Rng.create ~seed:7L in
  let zipf_sample =
    Test.make ~name:"zipf.sample"
      (Staged.stage (fun () ->
           ignore (Hinfs_sim.Zipf.sample zipf_gen zipf_rng)))
  in
  let tests =
    [ btree_insert; btree_find; radix_find; clbitmap_runs; zipf_sample ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"structures" ~fmt:"%s %s" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ time_per_run ] -> rows := (name, time_per_run) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, t) -> Fmt.pf ppf "%-32s %10.1f ns/run@." name t)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("tab2", tab2);
    ("tab3", tab3);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig7nv", fig7nv);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("ablate-repl", ablate_repl);
    ("serve", serve);
    ("baseline", baseline);
    ("micro", micro);
  ]

let () =
  let requested =
    let names =
      List.filter
        (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
        (List.tl (Array.to_list Sys.argv))
    in
    match names with [] -> List.map fst experiments | names -> names
  in
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let start = Sys.time () in
        f ();
        Fmt.pf ppf "[%s done in %.1f s cpu]@." name (Sys.time () -. start)
      | None ->
        Fmt.epr "unknown experiment %S (available: %s)@." name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested;
  Fmt.pf ppf "@.All requested experiments completed (%.1f s cpu).@."
    (Sys.time () -. t0)
