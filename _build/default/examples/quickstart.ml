(* Quickstart: mount HiNFS on a simulated NVMM device, do ordinary file
   I/O through the VFS handle, and look at what the buffer did.

     dune exec examples/quickstart.exe *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

let () =
  (* Everything runs inside a discrete-event simulation: the engine owns a
     virtual nanosecond clock, and file-system operations consume virtual
     time according to the NVMM cost model. *)
  let engine = Engine.create () in
  Engine.spawn engine ~name:"quickstart" (fun () ->
      (* 1. A 64 MB NVMM device with the paper's default timing (200 ns
         writes, 1 GB/s write bandwidth). *)
      let stats = Stats.create () in
      let config =
        Config.validate
          { Config.default with Config.nvmm_size = 64 * 1024 * 1024 }
      in
      let device = Device.create engine stats config in

      (* 2. mkfs + mount HiNFS with an 8 MB DRAM write buffer and the
         background writeback daemons running. *)
      let hcfg =
        { Hinfs.Hconfig.default with Hinfs.Hconfig.buffer_bytes = 8 * 1024 * 1024 }
      in
      let fs = Hinfs.Fs.mkfs_and_mount device ~hcfg ~daemons:true () in
      let h = Hinfs.Fs.handle fs in

      (* 3. Ordinary file I/O through the POSIX-flavoured handle. *)
      h.Vfs.mkdir "/projects";
      let fd = h.Vfs.open_ "/projects/notes.txt"
          { Types.creat with Types.read = true } in
      let text = Bytes.of_string "NVMM writes are slow; buffer them in DRAM.\n" in
      let t0 = Engine.now engine in
      for _ = 1 to 1000 do
        ignore (h.Vfs.write fd text (Bytes.length text))
      done;
      let write_time = Int64.sub (Engine.now engine) t0 in

      (* The writes are sitting in the DRAM buffer: read them back. *)
      h.Vfs.seek fd 0;
      let buf = Bytes.create (Bytes.length text) in
      ignore (h.Vfs.read fd buf (Bytes.length buf));
      Fmt.pr "first line read back: %s" (Bytes.to_string buf);
      Fmt.pr "1000 lazy writes took %.1f us of virtual time@."
        (Int64.to_float write_time /. 1e3);
      Fmt.pr "buffered blocks: %d (dirty: %d), NVMM bytes written so far: %Ld@."
        (Hinfs.Fs.buffered_blocks fs)
        (Hinfs.Fs.dirty_buffered_blocks fs)
        (Stats.nvmm_bytes_written stats);

      (* 4. fsync makes it durable: the dirty cachelines stream to NVMM and
         the ordered-mode metadata transaction commits. *)
      let t0 = Engine.now engine in
      h.Vfs.fsync fd;
      Fmt.pr "fsync took %.1f us; NVMM bytes now: %Ld@."
        (Int64.to_float (Int64.sub (Engine.now engine) t0) /. 1e3)
        (Stats.nvmm_bytes_written stats);
      h.Vfs.close fd;

      (* 5. Unmount flushes everything and stops the daemons. *)
      h.Vfs.unmount ();
      Fmt.pr "@.time breakdown:@.%a@." Stats.pp_breakdown stats);
  Engine.run engine;
  Fmt.pr "@.simulation finished at t = %.3f ms (virtual)@."
    (Int64.to_float (Engine.now engine) /. 1e6)
