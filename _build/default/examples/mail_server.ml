(* Mail-server scenario (the paper's varmail motivation): every delivered
   message is fsynced, so these writes are eager-persistent — watch the
   Eager-Persistent Write Checker learn that and route them straight to
   NVMM, while an unsynced scratch spool stays in the DRAM buffer.

     dune exec examples/mail_server.exe *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

let () =
  let engine = Engine.create () in
  Engine.spawn engine ~name:"mail-server" (fun () ->
      let stats = Stats.create () in
      let config =
        Config.validate
          { Config.default with Config.nvmm_size = 64 * 1024 * 1024 }
      in
      let device = Device.create engine stats config in
      let fs = Hinfs.Fs.mkfs_and_mount device ~daemons:true () in
      let h = Hinfs.Fs.handle fs in
      h.Vfs.mkdir "/mail";
      h.Vfs.mkdir "/scratch";

      let message = Bytes.make 8192 'm' in

      (* Deliver 50 messages to one hot mailbox: append + fsync each time.
         After the first sync the Buffer Benefit Model sees that nothing
         coalesces (N_cf = N_cw) and flips the blocks Eager-Persistent. *)
      let fd =
        h.Vfs.open_ "/mail/inbox" { Types.creat with Types.append = true }
      in
      for _ = 1 to 50 do
        ignore (h.Vfs.write fd message 8192);
        h.Vfs.fsync fd
      done;
      h.Vfs.close fd;
      Fmt.pr "inbox deliveries: lazy writes %d, eager writes %d@."
        (Stats.lazy_writes stats) (Stats.eager_writes stats);
      Fmt.pr "model accuracy so far: %.0f%% over %d predictions@."
        (100.0 *. Stats.bbm_accuracy stats)
        (Stats.bbm_predictions stats);

      (* Meanwhile, an index rebuild writes scratch data it never syncs:
         those writes stay lazy and coalesce in DRAM. *)
      let before = Stats.eager_writes stats in
      let fd = h.Vfs.open_ "/scratch/index" Types.creat in
      for _ = 1 to 50 do
        ignore (h.Vfs.pwrite fd ~off:0 message 8192)
      done;
      h.Vfs.close fd;
      Fmt.pr "scratch rebuild: +%d eager writes (should be 0), %d dirty \
              buffered blocks@."
        (Stats.eager_writes stats - before)
        (Hinfs.Fs.dirty_buffered_blocks fs);

      (* Deleting the scratch file drops its buffered blocks: the 50
         overwrites never touch NVMM at all. *)
      let nvmm_before = Stats.nvmm_bytes_written stats in
      h.Vfs.unlink "/scratch/index";
      Fmt.pr "unlink dropped %d dead blocks; NVMM wrote %Ld extra bytes@."
        (Stats.dead_block_drops stats)
        (Int64.sub (Stats.nvmm_bytes_written stats) nvmm_before);

      h.Vfs.unmount ();
      Fmt.pr "@.%a@." Stats.pp_breakdown stats);
  Engine.run engine
