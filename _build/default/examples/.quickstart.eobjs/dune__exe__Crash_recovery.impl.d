examples/crash_recovery.ml: Bytes Fmt Hinfs Hinfs_nvmm Hinfs_pmfs Hinfs_sim Hinfs_stats Hinfs_vfs Option
