examples/quickstart.ml: Bytes Fmt Hinfs Hinfs_nvmm Hinfs_sim Hinfs_stats Hinfs_vfs Int64
