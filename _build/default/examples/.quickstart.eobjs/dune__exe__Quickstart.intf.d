examples/quickstart.mli:
