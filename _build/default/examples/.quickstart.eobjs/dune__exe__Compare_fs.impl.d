examples/compare_fs.ml: Array Fmt Hinfs_harness Hinfs_workloads List Sys
