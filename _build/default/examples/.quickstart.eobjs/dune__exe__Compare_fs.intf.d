examples/compare_fs.mli:
