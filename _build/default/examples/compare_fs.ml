(* Run one workload across all the file systems of the paper's Table 3 and
   print a Fig. 7-style comparison row.

     dune exec examples/compare_fs.exe            (defaults to fileserver)
     dune exec examples/compare_fs.exe varmail *)

module Fixtures = Hinfs_harness.Fixtures
module Experiment = Hinfs_harness.Experiment
module Workload = Hinfs_workloads.Workload
module Filebench = Hinfs_workloads.Filebench

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fileserver" in
  let make =
    match name with
    | "fileserver" -> fun () -> Filebench.fileserver ()
    | "webserver" -> fun () -> Filebench.webserver ()
    | "webproxy" -> fun () -> Filebench.webproxy ()
    | "varmail" -> fun () -> Filebench.varmail ()
    | other -> Fmt.failwith "unknown workload %S" other
  in
  Fmt.pr "# %s on the paper's five file systems (4 threads, 100 ms window)@."
    name;
  let results =
    List.map
      (fun kind ->
        let result, _stats =
          Experiment.run_workload ~duration:100_000_000L kind (make ())
        in
        (Fixtures.name kind, result.Workload.ops_per_sec))
      Fixtures.paper_five
  in
  let pmfs = List.assoc "pmfs" results in
  List.iter
    (fun (fs, ops) ->
      Fmt.pr "%-14s %10.0f ops/s   %5.2fx pmfs@." fs ops (ops /. pmfs))
    results
