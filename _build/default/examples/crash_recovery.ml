(* Ordered-mode crash consistency, demonstrated: a lazy write that was
   never fsynced rolls back to the last synced state after a crash; an
   fsynced write survives. The crash is injected by dropping the device's
   volatile cacheline overlay, exactly what power loss does to a CPU
   cache in front of NVMM.

     dune exec examples/crash_recovery.exe *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

let () =
  let engine = Engine.create () in
  Engine.spawn engine ~name:"crash-recovery" (fun () ->
      let stats = Stats.create () in
      let config =
        Config.validate
          { Config.default with Config.nvmm_size = 32 * 1024 * 1024 }
      in
      let device = Device.create engine stats config in
      let fs = Hinfs.Fs.mkfs_and_mount device ~daemons:false () in
      let h = Hinfs.Fs.handle fs in

      (* A file with a durable prefix... *)
      let fd = h.Vfs.open_ "/journal.db" { Types.creat with Types.read = true } in
      let durable = Bytes.make 4096 'D' in
      ignore (h.Vfs.write fd durable 4096);
      h.Vfs.fsync fd;
      Fmt.pr "wrote 4096 bytes and fsynced them.@.";

      (* ...then a big lazy extension that is never synced. *)
      let volatile = Bytes.make 16384 'V' in
      ignore (h.Vfs.write fd volatile 16384);
      Fmt.pr "appended 16384 lazy bytes (buffered in DRAM, size = %d).@."
        (h.Vfs.fstat fd).Types.size;

      (* Power loss. *)
      Device.crash device;
      Fmt.pr "@.*** crash: volatile CPU-cache state dropped ***@.@.";

      (* Remount (as PMFS — the persistent format is shared) and recover. *)
      let fs2 = Pmfs.mount device () in
      Fmt.pr "recovery rolled back %d uncommitted transaction(s).@."
        (Pmfs.recovered_txns fs2);
      let ino = Option.get (Pmfs.lookup fs2 ~dir:Layout.root_ino "journal.db") in
      let size = Pmfs.inode_size fs2 ino in
      Fmt.pr "file size after recovery: %d (the fsynced prefix).@." size;
      let buf = Bytes.create size in
      ignore (Pmfs.read fs2 ~ino ~off:0 ~len:size ~into:buf ~into_off:0);
      assert (Bytes.equal buf durable);
      Fmt.pr "prefix content verified: ordered mode held — no committed \
              metadata ever pointed at unwritten data.@.";
      Pmfs.unmount fs2);
  Engine.run engine
