test/test_vfs.ml: Alcotest Bytes Hinfs_pmfs Hinfs_sim Hinfs_stats Hinfs_vfs Int64 String Testkit
