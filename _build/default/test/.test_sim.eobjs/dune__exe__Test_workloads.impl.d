test/test_workloads.ml: Alcotest Hinfs_harness Hinfs_nvmm Hinfs_sim Hinfs_stats Hinfs_trace Hinfs_workloads Int64 List
