test/test_pmfs.mli:
