test/test_extfs.mli:
