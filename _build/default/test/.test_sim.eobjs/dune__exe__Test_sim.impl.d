test/test_sim.ml: Alcotest Array Hinfs_sim Int64 List Testkit
