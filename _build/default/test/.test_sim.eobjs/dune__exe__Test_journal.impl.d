test/test_journal.ml: Alcotest Array Bytes Hinfs_blockdev Hinfs_journal Hinfs_nvmm Hinfs_sim Hinfs_stats Int64 List QCheck Testkit
