test/test_extfs.ml: Alcotest Array Bytes Char Hashtbl Hinfs_blockdev Hinfs_extfs Hinfs_nvmm Hinfs_pagecache Hinfs_sim Hinfs_stats Hinfs_vfs Int64 List Printf QCheck String Testkit
