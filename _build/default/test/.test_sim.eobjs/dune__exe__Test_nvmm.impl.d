test/test_nvmm.ml: Alcotest Bytes Hashtbl Hinfs_blockdev Hinfs_nvmm Hinfs_sim Hinfs_stats Int64 List Option QCheck String Testkit
