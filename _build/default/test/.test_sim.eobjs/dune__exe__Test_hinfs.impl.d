test/test_hinfs.ml: Alcotest Array Bytes Char Hashtbl Hinfs Hinfs_nvmm Hinfs_pmfs Hinfs_sim Hinfs_stats Hinfs_vfs Int64 List Option Printf QCheck String Testkit
