test/test_hinfs.mli:
