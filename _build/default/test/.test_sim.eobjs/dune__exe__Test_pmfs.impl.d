test/test_pmfs.ml: Alcotest Array Bytes Char Hashtbl Hinfs_nvmm Hinfs_pmfs Hinfs_sim Hinfs_stats Hinfs_vfs Int64 List Option Printf QCheck String Testkit
