test/test_structures.ml: Alcotest Hashtbl Hinfs_structures Int List Map QCheck String Testkit
