(* VFS-layer unit tests: path handling, flag semantics, and locking
   behaviour that the FS-specific suites do not isolate. *)

module Path = Hinfs_vfs.Path
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs
module Proc = Hinfs_sim.Proc
module Pmfs = Hinfs_pmfs.Pmfs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- path --- *)

let test_path_split () =
  Alcotest.(check (list string)) "simple" [ "a"; "b"; "c" ]
    (Path.split "/a/b/c");
  Alcotest.(check (list string)) "root" [] (Path.split "/");
  Alcotest.(check (list string)) "double slashes collapse" [ "a"; "b" ]
    (Path.split "//a//b/");
  let rejects p =
    try
      ignore (Path.split p);
      false
    with Errno.Fs_error (EINVAL, _) -> true
  in
  check_bool "relative rejected" true (rejects "a/b");
  check_bool "empty rejected" true (rejects "");
  check_bool "dot rejected" true (rejects "/a/./b");
  check_bool "dotdot rejected" true (rejects "/a/../b")

let test_path_helpers () =
  Alcotest.(check string) "basename" "c" (Path.basename "/a/b/c");
  Alcotest.(check string) "dirname" "/a/b" (Path.dirname "/a/b/c");
  Alcotest.(check string) "dirname at root" "/" (Path.dirname "/c");
  Alcotest.(check string) "concat root" "/x" (Path.concat "/" "x");
  Alcotest.(check string) "concat nested" "/a/x" (Path.concat "/a" "x");
  Alcotest.(check string) "join" "/a/b" (Path.join [ "a"; "b" ]);
  let dir, name = Path.split_dir "/a/b/c" in
  Alcotest.(check (list string)) "split_dir dir" [ "a"; "b" ] dir;
  Alcotest.(check string) "split_dir name" "c" name

let test_long_component_rejected () =
  let long = String.make 300 'x' in
  let rejects =
    try
      ignore (Path.split ("/" ^ long));
      false
    with Errno.Fs_error (EINVAL, _) -> true
  in
  check_bool "over-long component" true rejects

(* --- flag semantics (on PMFS, the simplest backend) --- *)

let test_truncate_flag () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      let fd = h.Vfs.open_ "/t" Types.creat in
      ignore (h.Vfs.write fd (Bytes.make 5000 'x') 5000);
      h.Vfs.close fd;
      let fd = h.Vfs.open_ "/t" { Types.creat with Types.truncate = true } in
      check_int "truncated on open" 0 (h.Vfs.fstat fd).Types.size;
      h.Vfs.close fd)

let test_read_at_eof_returns_zero () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      let fd = h.Vfs.open_ "/e" { Types.creat with Types.read = true } in
      ignore (h.Vfs.write fd (Bytes.make 10 'x') 10);
      let buf = Bytes.create 10 in
      check_int "pread past EOF" 0 (h.Vfs.pread fd ~off:100 buf 10);
      h.Vfs.seek fd 10;
      check_int "read at EOF" 0 (h.Vfs.read fd buf 10);
      h.Vfs.close fd)

let test_unlink_open_file_rejected () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      let fd = h.Vfs.open_ "/busy" Types.creat in
      let rejected =
        try
          h.Vfs.unlink "/busy";
          false
        with Errno.Fs_error (EINVAL, _) -> true
      in
      check_bool "unlink while open rejected" true rejected;
      h.Vfs.close fd;
      h.Vfs.unlink "/busy";
      check_bool "unlink after close" false (h.Vfs.exists "/busy"))

let test_open_directory_for_write_rejected () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      h.Vfs.mkdir "/dir";
      let rejected =
        try
          ignore (h.Vfs.open_ "/dir" Types.wronly);
          false
        with Errno.Fs_error (EISDIR, _) -> true
      in
      check_bool "EISDIR" true rejected;
      (* stat still works on directories *)
      check_bool "dir stats" true
        ((h.Vfs.stat "/dir").Types.kind = Types.Directory))

let test_syscall_overhead_charged () =
  let stats = Hinfs_stats.Stats.create () in
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device ~stats engine in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 () in
      let h = Pmfs.handle fs in
      let t0 = Proc.now () in
      check_bool "missing" false (h.Vfs.exists "/nothing");
      (* exists = one stat syscall: at least the syscall cost elapsed. *)
      check_bool "syscall cost" true
        (Int64.compare (Int64.sub (Proc.now ()) t0) 1000L >= 0))

let test_concurrent_readers_share_inode_lock () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      let fd = h.Vfs.open_ "/shared" { Types.creat with Types.read = true } in
      ignore (h.Vfs.write fd (Bytes.make 65536 's') 65536);
      h.Vfs.close fd;
      (* Two concurrent whole-file readers should overlap: total elapsed
         well under 2x a single read. *)
      let single =
        let t0 = Proc.now () in
        let fd = h.Vfs.open_ "/shared" Types.rdonly in
        let buf = Bytes.create 65536 in
        ignore (h.Vfs.pread fd ~off:0 buf 65536);
        h.Vfs.close fd;
        Int64.sub (Proc.now ()) t0
      in
      let t0 = Proc.now () in
      let live = ref 2 in
      for _ = 1 to 2 do
        Proc.spawn (fun () ->
            let fd = h.Vfs.open_ "/shared" Types.rdonly in
            let buf = Bytes.create 65536 in
            ignore (h.Vfs.pread fd ~off:0 buf 65536);
            h.Vfs.close fd;
            decr live)
      done;
      while !live > 0 do
        Proc.delay 1000L
      done;
      let both = Int64.sub (Proc.now ()) t0 in
      check_bool "readers overlap" true
        (Int64.to_float both < 1.8 *. Int64.to_float single))

let () =
  Alcotest.run "vfs"
    [
      ( "path",
        [
          Alcotest.test_case "split" `Quick test_path_split;
          Alcotest.test_case "helpers" `Quick test_path_helpers;
          Alcotest.test_case "long component" `Quick
            test_long_component_rejected;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "O_TRUNC" `Quick test_truncate_flag;
          Alcotest.test_case "EOF reads" `Quick test_read_at_eof_returns_zero;
          Alcotest.test_case "unlink open file" `Quick
            test_unlink_open_file_rejected;
          Alcotest.test_case "open dir for write" `Quick
            test_open_directory_for_write_rejected;
          Alcotest.test_case "syscall overhead" `Quick
            test_syscall_overhead_charged;
          Alcotest.test_case "readers share lock" `Quick
            test_concurrent_readers_share_inode_lock;
        ] );
    ]
