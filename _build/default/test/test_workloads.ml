(* Tests for the workload generators, trace generators/replayer, and the
   experiment harness: determinism, op-mix properties, and end-to-end runs
   on small configurations. *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Workload = Hinfs_workloads.Workload
module Filebench = Hinfs_workloads.Filebench
module Fio = Hinfs_workloads.Fio
module Postmark = Hinfs_workloads.Postmark
module Tpcc = Hinfs_workloads.Tpcc
module Kernel = Hinfs_workloads.Kernel
module Trace = Hinfs_trace.Trace
module Fixtures = Hinfs_harness.Fixtures
module Experiment = Hinfs_harness.Experiment

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small, fast spec for tests. *)
let tiny_spec =
  {
    Experiment.default_spec with
    Experiment.nvmm_size = 48 * 1024 * 1024;
    Experiment.buffer_bytes = 2 * 1024 * 1024;
    Experiment.cache_pages = 512;
    Experiment.threads = 2;
    Experiment.duration_ns = 10_000_000L;
  }

let small_fb =
  {
    Filebench.default_params with
    Filebench.nfiles = 24;
    Filebench.mean_file_size = 16 * 1024;
    Filebench.io_size = 16 * 1024;
    Filebench.append_size = 4 * 1024;
  }

let small_workloads () =
  [
    ("fileserver", Filebench.fileserver ~params:small_fb ());
    ("webserver", Filebench.webserver ~params:small_fb ());
    ("webproxy", Filebench.webproxy ~params:small_fb ());
    ("varmail", Filebench.varmail ~params:small_fb ());
    ( "fio",
      Fio.make
        ~params:
          { Fio.default_params with Fio.file_size = 1024 * 1024; Fio.io_size = 4096 }
        () );
  ]

(* --- every rate workload runs on every FS kind without error --- *)

let test_workloads_run_everywhere () =
  List.iter
    (fun kind ->
      List.iter
        (fun (name, w) ->
          let result, _stats =
            Experiment.run_workload ~spec:tiny_spec kind w
          in
          if result.Workload.ops <= 0 then
            Alcotest.failf "%s on %s performed no ops" name
              (Fixtures.name kind))
        (small_workloads ()))
    [
      Fixtures.Pmfs_fs;
      Fixtures.Hinfs_fs;
      Fixtures.Ext2_nvmmbd;
      Fixtures.Ext4_nvmmbd;
      Fixtures.Ext4_dax;
    ]

let test_ablation_kinds_run () =
  List.iter
    (fun kind ->
      let result, _ =
        Experiment.run_workload ~spec:tiny_spec kind
          (Filebench.fileserver ~params:small_fb ())
      in
      check_bool "ops > 0" true (result.Workload.ops > 0))
    [ Fixtures.Hinfs_nclfw; Fixtures.Hinfs_wb; Fixtures.Hinfs_fifo; Fixtures.Hinfs_lfu ]

(* --- determinism: same seed, same result --- *)

let test_determinism () =
  let run () =
    let result, stats =
      Experiment.run_workload ~spec:tiny_spec Fixtures.Hinfs_fs
        (Filebench.fileserver ~params:small_fb ())
    in
    (result.Workload.ops, Stats.nvmm_bytes_written stats)
  in
  let a = run () and b = run () in
  check_bool "bit-identical runs" true (a = b)

let test_different_seeds_differ () =
  let run seed =
    let spec = { tiny_spec with Experiment.seed } in
    let result, _ =
      Experiment.run_workload ~spec Fixtures.Hinfs_fs
        (Filebench.fileserver ~params:small_fb ())
    in
    result.Workload.ops
  in
  check_bool "seeds change the run" true (run 1L <> run 99L)

(* --- jobs --- *)

let small_postmark =
  { Postmark.default_params with Postmark.nfiles = 40; Postmark.transactions = 120 }

let small_tpcc =
  {
    Tpcc.default_params with
    Tpcc.heap_pages = 64;
    Tpcc.transactions = 60;
    Tpcc.checkpoint_every = 16;
  }

let small_kernel =
  { Kernel.default_params with Kernel.nfiles = 30; Kernel.dirs = 5 }

let test_jobs_complete () =
  List.iter
    (fun kind ->
      List.iter
        (fun (name, job) ->
          let r, _ = Experiment.run_job ~spec:tiny_spec kind job in
          if r.Workload.jr_ops <= 0 then
            Alcotest.failf "%s on %s did nothing" name (Fixtures.name kind);
          check_bool "elapsed > 0" true
            (Int64.compare r.Workload.jr_elapsed_ns 0L > 0))
        [
          ("postmark", Postmark.make ~params:small_postmark ());
          ("tpcc", Tpcc.make ~params:small_tpcc ());
          ("kernel-grep", Kernel.grep ~params:small_kernel ());
          ("kernel-make", Kernel.make_build ~params:small_kernel ());
        ])
    [ Fixtures.Pmfs_fs; Fixtures.Hinfs_fs ]

let test_tpcc_fsync_heavy () =
  let _r, stats =
    Experiment.run_job ~spec:tiny_spec Fixtures.Pmfs_fs
      (Tpcc.make ~params:small_tpcc ())
  in
  (* Fig 2: TPC-C has > 90% fsync bytes. *)
  check_bool "tpcc fsync ratio high" true (Stats.fsync_byte_ratio stats > 0.9)

let test_kernel_grep_is_read_only () =
  let _r, stats =
    Experiment.run_job ~spec:tiny_spec Fixtures.Pmfs_fs
      (Kernel.grep ~params:small_kernel ())
  in
  Alcotest.(check int64) "no user writes" 0L (Stats.user_bytes_written stats);
  check_bool "plenty of reads" true
    (Int64.compare (Stats.user_bytes_read stats) 100_000L > 0)

(* --- traces --- *)

let test_trace_profiles () =
  let count trace =
    List.fold_left
      (fun (r, w, u, f) op ->
        match op with
        | Trace.Read _ -> (r + 1, w, u, f)
        | Trace.Write _ -> (r, w + 1, u, f)
        | Trace.Unlink _ -> (r, w, u + 1, f)
        | Trace.Fsync _ -> (r, w, u, f + 1))
      (0, 0, 0, 0)
      (Trace.ops trace)
  in
  (* LASR: Fig 2 shows zero fsync writes. *)
  let _, _, _, lasr_fsyncs = count (Trace.lasr ~ops:2000 ()) in
  check_int "lasr has no fsync" 0 lasr_fsyncs;
  (* Facebook: almost every write is followed by a sync. *)
  let _, fb_writes, _, fb_fsyncs = count (Trace.facebook ~ops:2000 ()) in
  check_bool "facebook syncs nearly every write" true
    (float_of_int fb_fsyncs > 0.8 *. float_of_int fb_writes);
  (* Usr0: a moderate share of syncs, more writes than reads. *)
  let u_reads, u_writes, _, u_fsyncs = count (Trace.usr0 ~ops:2000 ()) in
  check_bool "usr0 write-leaning" true (u_writes > u_reads);
  check_bool "usr0 moderate fsync" true (u_fsyncs > 0 && u_fsyncs < u_writes)

let test_trace_generation_deterministic () =
  let a = Trace.usr1 ~ops:500 () and b = Trace.usr1 ~ops:500 () in
  check_bool "identical traces" true (Trace.ops a = Trace.ops b)

let test_facebook_small_io () =
  let trace = Trace.facebook ~ops:2000 () in
  let total, n =
    List.fold_left
      (fun (total, n) op ->
        match op with
        | Trace.Write { len; _ } -> (total + len, n + 1)
        | _ -> (total, n))
      (0, 0) (Trace.ops trace)
  in
  (* §5.3: the Facebook trace's mean I/O size is below 1 KB. *)
  check_bool "mean write below 1 KB" true (total / max 1 n < 1024)

let test_replay_runs_and_breaks_down () =
  List.iter
    (fun kind ->
      let r, _stats =
        Experiment.run_trace
          ~spec:{ tiny_spec with Experiment.buffer_bytes = 1024 * 1024 }
          kind
          (Trace.usr0 ~ops:800 ())
      in
      check_bool "ops replayed" true (r.Trace.r_ops > 800);
      let sum =
        Int64.add r.Trace.r_read_ns
          (Int64.add r.Trace.r_write_ns
             (Int64.add r.Trace.r_unlink_ns r.Trace.r_fsync_ns))
      in
      check_bool "breakdown <= total" true
        (Int64.compare sum r.Trace.r_elapsed_ns <= 0);
      check_bool "breakdown covers most of the total" true
        (Int64.to_float sum > 0.9 *. Int64.to_float r.Trace.r_elapsed_ns))
    [ Fixtures.Pmfs_fs; Fixtures.Hinfs_fs ]

(* --- paper-shape sanity checks (small scale) --- *)

let test_hinfs_beats_pmfs_on_lazy_writes () =
  let ops kind =
    let result, _ =
      Experiment.run_workload ~spec:tiny_spec kind
        (Filebench.fileserver ~params:small_fb ())
    in
    result.Workload.ops_per_sec
  in
  check_bool "hinfs > pmfs on fileserver" true
    (ops Fixtures.Hinfs_fs > ops Fixtures.Pmfs_fs)

let test_hinfs_matches_pmfs_on_reads () =
  let ops kind =
    let result, _ =
      Experiment.run_workload ~spec:tiny_spec kind
        (Kernel.grep ~params:small_kernel ()
        |> fun job ->
        ignore job;
        Filebench.webserver ~params:small_fb ())
    in
    result.Workload.ops_per_sec
  in
  let hinfs = ops Fixtures.Hinfs_fs and pmfs = ops Fixtures.Pmfs_fs in
  check_bool "within 2x of each other" true
    (hinfs < 2.0 *. pmfs && pmfs < 2.0 *. hinfs)

let test_latency_sensitivity_direction () =
  (* Fig 11: HiNFS's advantage over PMFS grows with NVMM write latency. *)
  let ratio nvmm_write_ns =
    let spec = { tiny_spec with Experiment.nvmm_write_ns } in
    let ops kind =
      let result, _ =
        Experiment.run_workload ~spec ~threads:1 kind
          (Filebench.fileserver ~params:small_fb ())
      in
      result.Workload.ops_per_sec
    in
    ops Fixtures.Hinfs_fs /. ops Fixtures.Pmfs_fs
  in
  let slow = ratio 800 and fast = ratio 50 in
  check_bool "advantage grows with latency" true (slow > fast);
  check_bool "never loses at DRAM-like latency" true (fast > 0.8)

let () =
  Alcotest.run "workloads"
    [
      ( "rate-workloads",
        [
          Alcotest.test_case "run on every fs" `Slow
            test_workloads_run_everywhere;
          Alcotest.test_case "ablation kinds run" `Quick
            test_ablation_kinds_run;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "seed-sensitive" `Quick
            test_different_seeds_differ;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "complete" `Slow test_jobs_complete;
          Alcotest.test_case "tpcc fsync-heavy" `Quick test_tpcc_fsync_heavy;
          Alcotest.test_case "kernel-grep read-only" `Quick
            test_kernel_grep_is_read_only;
        ] );
      ( "traces",
        [
          Alcotest.test_case "profiles" `Quick test_trace_profiles;
          Alcotest.test_case "deterministic" `Quick
            test_trace_generation_deterministic;
          Alcotest.test_case "facebook small io" `Quick test_facebook_small_io;
          Alcotest.test_case "replay breakdown" `Quick
            test_replay_runs_and_breaks_down;
        ] );
      ( "paper-shape",
        [
          Alcotest.test_case "buffering wins on fileserver" `Quick
            test_hinfs_beats_pmfs_on_lazy_writes;
          Alcotest.test_case "reads at par" `Quick
            test_hinfs_matches_pmfs_on_reads;
          Alcotest.test_case "latency sensitivity" `Slow
            test_latency_sensitivity_direction;
        ] );
    ]
