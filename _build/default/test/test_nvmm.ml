(* Tests for the NVMM device model: data integrity, cache/crash semantics,
   timing charges, and the allocator. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Allocator = Hinfs_nvmm.Allocator
module Blockdev = Hinfs_blockdev.Blockdev

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let cat = Stats.Other

(* --- config --- *)

let test_config_defaults () =
  let c = Config.default in
  check_int "cachelines per block" 64 (Config.cachelines_per_block c);
  (* 1 GB/s at 200ns per 64B line: 64/200e-9 = 320 MB/s per slot -> 3 slots *)
  check_int "nw slots" 3 (Config.nw_slots c);
  check_int "lines in aligned 4K" 64 (Config.cachelines_in c ~addr:0 ~len:4096);
  check_int "lines in unaligned range" 2
    (Config.cachelines_in c ~addr:60 ~len:8);
  check_int "lines in 1 byte" 1 (Config.cachelines_in c ~addr:0 ~len:1);
  check_int "lines in empty" 0 (Config.cachelines_in c ~addr:0 ~len:0)

let test_config_validation () =
  Alcotest.check_raises "bad cacheline"
    (Invalid_argument "Config: cacheline_size must be a positive power of two")
    (fun () ->
      ignore (Config.validate { Config.default with Config.cacheline_size = 48 }))

let test_nw_slots_sweep () =
  (* Higher latency at same bandwidth means more concurrent slots. *)
  let slots lat =
    Config.nw_slots { Config.default with Config.nvmm_write_ns = lat }
  in
  check_int "50ns" 1 (slots 50);
  check_int "200ns" 3 (slots 200);
  check_int "800ns" 13 (slots 800)

(* --- device data integrity --- *)

let test_write_nt_read_back () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let payload = Testkit.pattern_bytes ~seed:1 1000 in
      Device.write_nt d ~cat ~addr:123 ~src:payload ~off:0 ~len:1000;
      let back = Device.read_alloc d ~cat ~addr:123 ~len:1000 in
      Testkit.check_bytes "round trip" payload back)

let test_cached_write_visible_before_flush () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let payload = Testkit.pattern_bytes ~seed:2 100 in
      Device.write_cached d ~cat ~addr:4096 ~src:payload ~off:0 ~len:100;
      (* Coherent view sees it... *)
      let back = Device.read_alloc d ~cat ~addr:4096 ~len:100 in
      Testkit.check_bytes "coherent read" payload back;
      (* ...but the medium does not. *)
      let persisted = Device.peek_persistent d ~addr:4096 ~len:100 in
      check_bool "not yet persistent" true
        (Bytes.to_string persisted = String.make 100 '\000'))

let test_crash_drops_unflushed () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let payload = Testkit.pattern_bytes ~seed:3 256 in
      Device.write_cached d ~cat ~addr:0 ~src:payload ~off:0 ~len:256;
      (* Flush only the first two cachelines. *)
      Device.clflush d ~cat ~addr:0 ~len:128;
      Device.crash d;
      let back = Device.peek d ~addr:0 ~len:256 in
      Testkit.check_bytes "flushed part survived"
        (Bytes.sub payload 0 128) (Bytes.sub back 0 128);
      check_bool "unflushed part lost" true
        (Bytes.to_string (Bytes.sub back 128 128) = String.make 128 '\000'))

let test_write_nt_survives_crash () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let payload = Testkit.pattern_bytes ~seed:4 512 in
      Device.write_nt d ~cat ~addr:8192 ~src:payload ~off:0 ~len:512;
      Device.crash d;
      let back = Device.peek d ~addr:8192 ~len:512 in
      Testkit.check_bytes "nt store persistent" payload back)

let test_write_nt_invalidates_overlay () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let cached = Bytes.make 64 'A' in
      Device.write_cached d ~cat ~addr:0 ~src:cached ~off:0 ~len:64;
      let nt = Bytes.make 64 'B' in
      Device.write_nt d ~cat ~addr:0 ~src:nt ~off:0 ~len:64;
      (* Full-line NT store wins over the stale cached copy. *)
      let back = Device.read_alloc d ~cat ~addr:0 ~len:64 in
      Testkit.check_bytes "nt wins" nt back;
      check_int "overlay dropped" 0 (Device.dirty_cachelines d))

let test_write_nt_partial_line_merges_overlay () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let cached = Bytes.make 64 'A' in
      Device.write_cached d ~cat ~addr:0 ~src:cached ~off:0 ~len:64;
      let nt = Bytes.make 16 'B' in
      Device.write_nt d ~cat ~addr:8 ~src:nt ~off:0 ~len:16;
      let back = Device.read_alloc d ~cat ~addr:0 ~len:64 in
      let expected = Bytes.make 64 'A' in
      Bytes.fill expected 8 16 'B';
      Testkit.check_bytes "merged view" expected back)

let test_dirty_line_tracking () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      check_int "clean initially" 0 (Device.dirty_cachelines d);
      let b = Bytes.make 1 'x' in
      Device.write_cached d ~cat ~addr:100 ~src:b ~off:0 ~len:1;
      check_int "one dirty line" 1 (Device.dirty_cachelines d);
      check_bool "line 1 dirty" true (Device.is_dirty_line d 1);
      Device.clflush d ~cat ~addr:64 ~len:64;
      check_int "clean after flush" 0 (Device.dirty_cachelines d))

(* --- timing --- *)

let test_write_nt_timing () =
  let stats = Stats.create () in
  let elapsed =
    Testkit.run_sim (fun engine ->
        let d = Testkit.make_device ~stats engine in
        let t0 = Proc.now () in
        let payload = Bytes.make 4096 'x' in
        Device.write_nt d ~cat ~addr:0 ~src:payload ~off:0 ~len:4096;
        Int64.sub (Proc.now ()) t0)
  in
  (* 64 lines x 200 ns *)
  check_i64 "nt write cost" 12_800L elapsed;
  check_i64 "charged to category" 12_800L (Stats.time stats cat);
  check_i64 "bytes counted" 4096L (Stats.nvmm_bytes_written stats)

let test_bandwidth_throttling () =
  (* With 3 slots, 6 concurrent 64-line writes take twice as long as 3. *)
  let engine = Engine.create () in
  let stats = Stats.create () in
  let d = Device.create engine stats Testkit.small_config in
  let payload = Bytes.make 4096 'x' in
  for i = 0 to 5 do
    Engine.spawn engine (fun () ->
        Device.write_nt d ~cat ~addr:(i * 4096) ~src:payload ~off:0 ~len:4096)
  done;
  Engine.run engine;
  check_i64 "6 writes on 3 slots take 2 rounds" 25_600L (Engine.now engine)

let test_clflush_only_pays_for_dirty () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device ~stats engine in
      let b = Bytes.make 64 'x' in
      Device.write_cached d ~cat ~addr:0 ~src:b ~off:0 ~len:64;
      (* Flush 4 lines, only 1 dirty. *)
      Device.clflush d ~cat ~addr:0 ~len:256);
  check_i64 "only dirty line counted" 64L (Stats.nvmm_bytes_written stats)

let test_read_timing () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device ~stats engine in
      let buf = Bytes.create 4096 in
      Device.read d ~cat:Stats.Read_access ~addr:0 ~len:4096 ~into:buf ~off:0);
  (* 64 lines x 8 ns dram read *)
  check_i64 "read cost" 512L (Stats.time stats Stats.Read_access)

let test_bounds_checking () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let size = Device.size d in
      let b = Bytes.make 16 'x' in
      let raised = ref false in
      (try Device.write_nt d ~cat ~addr:(size - 8) ~src:b ~off:0 ~len:16
       with Invalid_argument _ -> raised := true);
      check_bool "out of bounds rejected" true !raised)

(* --- allocator --- *)

let test_allocator_basic () =
  let a = Allocator.create ~first_block:10 ~count:5 in
  check_int "free" 5 (Allocator.free_blocks a);
  let b1 = Option.get (Allocator.alloc a) in
  check_int "first block" 10 b1;
  let rest = List.init 4 (fun _ -> Option.get (Allocator.alloc a)) in
  Alcotest.(check (list int)) "sequential" [ 11; 12; 13; 14 ] rest;
  Alcotest.(check (option int)) "exhausted" None (Allocator.alloc a);
  Allocator.free a 12;
  Alcotest.(check (option int)) "reuses freed" (Some 12) (Allocator.alloc a)

let test_allocator_double_free () =
  let a = Allocator.create ~first_block:0 ~count:4 in
  let b = Option.get (Allocator.alloc a) in
  Allocator.free a b;
  Alcotest.check_raises "double free"
    (Invalid_argument "Allocator.free: double free") (fun () ->
      Allocator.free a b)

let test_allocator_contiguous () =
  let a = Allocator.create ~first_block:0 ~count:10 in
  let b = Option.get (Allocator.alloc_contiguous a 4) in
  check_int "run start" 0 b;
  (* Fragment: free 1,2 but not 0,3 *)
  Allocator.free a 1;
  Allocator.free a 2;
  let c = Option.get (Allocator.alloc_contiguous a 3) in
  check_int "skips fragmented space" 4 c;
  Alcotest.(check (option int)) "too big" None (Allocator.alloc_contiguous a 8)

let allocator_no_double_alloc_prop =
  QCheck.Test.make ~name:"allocator never double-allocates" ~count:100
    QCheck.(list (option (int_bound 49)))
    (fun ops ->
      (* Some x = try to free block x if held; None = alloc. *)
      let a = Allocator.create ~first_block:0 ~count:50 in
      let held = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | None -> (
            match Allocator.alloc a with
            | None -> ()
            | Some b ->
              if Hashtbl.mem held b then
                QCheck.Test.fail_reportf "double allocation of %d" b;
              Hashtbl.replace held b ())
          | Some b ->
            if Hashtbl.mem held b then begin
              Allocator.free a b;
              Hashtbl.remove held b
            end)
        ops;
      Allocator.used_blocks a = Hashtbl.length held)

(* --- blockdev --- *)

let test_blockdev_roundtrip () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let block = Testkit.pattern_bytes ~seed:9 4096 in
      Blockdev.write_block bdev ~cat 5 ~src:block ~off:0;
      let back = Bytes.create 4096 in
      Blockdev.read_block bdev ~cat 5 ~into:back ~off:0;
      Testkit.check_bytes "block round trip" block back;
      check_int "write requests" 1 (Blockdev.write_requests bdev);
      check_int "read requests" 1 (Blockdev.read_requests bdev))

let test_blockdev_overhead_charged () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device ~stats engine in
      let bdev = Blockdev.create d in
      let block = Bytes.make 4096 'x' in
      Blockdev.write_block bdev ~cat 0 ~src:block ~off:0;
      Blockdev.read_block bdev ~cat 0 ~into:block ~off:0);
  (* 2 requests x 8000 ns block layer overhead *)
  check_i64 "block layer overhead" 16_000L (Stats.time stats Stats.Block_layer)

let () =
  Alcotest.run "nvmm"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "nw slots sweep" `Quick test_nw_slots_sweep;
        ] );
      ( "device",
        [
          Alcotest.test_case "nt write round trip" `Quick
            test_write_nt_read_back;
          Alcotest.test_case "cached write coherence" `Quick
            test_cached_write_visible_before_flush;
          Alcotest.test_case "crash drops unflushed" `Quick
            test_crash_drops_unflushed;
          Alcotest.test_case "nt write survives crash" `Quick
            test_write_nt_survives_crash;
          Alcotest.test_case "nt invalidates overlay" `Quick
            test_write_nt_invalidates_overlay;
          Alcotest.test_case "partial nt merges overlay" `Quick
            test_write_nt_partial_line_merges_overlay;
          Alcotest.test_case "dirty line tracking" `Quick
            test_dirty_line_tracking;
          Alcotest.test_case "bounds checking" `Quick test_bounds_checking;
        ] );
      ( "timing",
        [
          Alcotest.test_case "nt write cost" `Quick test_write_nt_timing;
          Alcotest.test_case "bandwidth throttling" `Quick
            test_bandwidth_throttling;
          Alcotest.test_case "clflush dirty only" `Quick
            test_clflush_only_pays_for_dirty;
          Alcotest.test_case "read cost" `Quick test_read_timing;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "basic" `Quick test_allocator_basic;
          Alcotest.test_case "double free" `Quick test_allocator_double_free;
          Alcotest.test_case "contiguous" `Quick test_allocator_contiguous;
        ]
        @ Testkit.qcheck_cases [ allocator_no_double_alloc_prop ] );
      ( "blockdev",
        [
          Alcotest.test_case "round trip" `Quick test_blockdev_roundtrip;
          Alcotest.test_case "overhead charged" `Quick
            test_blockdev_overhead_charged;
        ] );
    ]
