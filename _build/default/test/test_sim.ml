(* Tests for the discrete-event simulation engine and its primitives. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Resource = Hinfs_sim.Resource
module Condvar = Hinfs_sim.Condvar
module Rwlock = Hinfs_sim.Rwlock
module Rng = Hinfs_sim.Rng
module Zipf = Hinfs_sim.Zipf
module Heap = Hinfs_sim.Heap

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* --- heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  let seq = ref 0 in
  let add time payload =
    Heap.add h ~time ~seq:!seq payload;
    incr seq
  in
  add 30L "c";
  add 10L "a";
  add 20L "b";
  add 10L "a2";
  let pop () =
    match Heap.pop h with
    | Some { Heap.payload; _ } -> payload
    | None -> Alcotest.fail "heap empty"
  in
  check_int "length" 4 (Heap.length h);
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "fifo at same time" "a2" (pop ());
  Alcotest.(check string) "then b" "b" (pop ());
  Alcotest.(check string) "then c" "c" (pop ());
  check_bool "empty" true (Heap.is_empty h)

let test_heap_random () =
  let h = Heap.create () in
  let rng = Rng.create ~seed:42L in
  let n = 1000 in
  for i = 0 to n - 1 do
    Heap.add h ~time:(Int64.of_int (Rng.int rng 100)) ~seq:i i
  done;
  let prev = ref (-1L, -1) in
  for _ = 1 to n do
    match Heap.pop h with
    | None -> Alcotest.fail "heap drained early"
    | Some { Heap.time; seq; _ } ->
      let pt, ps = !prev in
      check_bool "monotone (time, seq)" true
        (Int64.compare pt time < 0 || (Int64.equal pt time && ps < seq));
      prev := (time, seq)
  done

(* --- engine basics --- *)

let test_delay_advances_clock () =
  let final =
    Testkit.run_sim (fun _engine ->
        Proc.delay 100L;
        Proc.delay 50L;
        Proc.now ())
  in
  check_i64 "clock" 150L final

let test_same_time_fifo () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.spawn engine (fun () -> order := i :: !order)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "spawn order preserved" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_spawn_interleaving () =
  let trace = ref [] in
  let record x = trace := x :: !trace in
  Testkit.run_sim (fun _ ->
      Proc.spawn (fun () ->
          record "a0";
          Proc.delay 10L;
          record "a10");
      Proc.spawn (fun () ->
          record "b0";
          Proc.delay 5L;
          record "b5");
      Proc.delay 20L;
      record "main20");
  Alcotest.(check (list string))
    "interleaving by virtual time"
    [ "a0"; "b0"; "b5"; "a10"; "main20" ]
    (List.rev !trace)

let test_run_until_horizon () =
  let engine = Engine.create () in
  let fired = ref 0 in
  Engine.spawn engine (fun () ->
      let rec loop () =
        Proc.delay 10L;
        incr fired;
        if !fired < 1000 then loop ()
      in
      loop ());
  Engine.run ~until:55L engine;
  check_int "events before horizon" 5 !fired;
  check_i64 "clock at horizon" 55L (Engine.now engine)

let test_exception_propagates () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () ->
      Proc.delay 5L;
      failwith "boom");
  Alcotest.check_raises "process exception re-raised" (Failure "boom")
    (fun () -> Engine.run engine)

let test_negative_delay_rejected () =
  let engine = Engine.create () in
  let raised = ref false in
  Engine.spawn engine (fun () ->
      try Proc.delay (-5L)
      with Invalid_argument _ -> raised := true);
  Engine.run engine;
  (* Negative delays are silently clamped by Proc.delay (returns without
     yielding), so no exception is expected from the helper... *)
  check_bool "no exception from Proc.delay" false !raised

(* --- resources --- *)

let test_resource_limits_concurrency () =
  let peak = ref 0 in
  let active = ref 0 in
  Testkit.run_sim (fun engine ->
      let r = Resource.create ~name:"r" ~capacity:3 in
      for _ = 1 to 10 do
        Proc.spawn (fun () ->
            Resource.with_resource r 1 (fun () ->
                incr active;
                peak := max !peak !active;
                Proc.delay 100L;
                decr active))
      done;
      ignore engine);
  check_int "peak concurrency bounded by capacity" 3 !peak

let test_resource_fifo () =
  let order = ref [] in
  Testkit.run_sim (fun _ ->
      let r = Resource.create ~name:"r" ~capacity:1 in
      for i = 1 to 4 do
        Proc.spawn (fun () ->
            Resource.with_resource r 1 (fun () ->
                order := i :: !order;
                Proc.delay 10L))
      done);
  Alcotest.(check (list int)) "FIFO grants" [ 1; 2; 3; 4 ] (List.rev !order)

let test_resource_bandwidth_timing () =
  (* 2 slots, 3 jobs of 100ns each: third job starts at t=100. *)
  let finish_times = ref [] in
  Testkit.run_sim (fun _ ->
      let r = Resource.create ~name:"r" ~capacity:2 in
      for _ = 1 to 3 do
        Proc.spawn (fun () ->
            Resource.with_resource r 1 (fun () -> Proc.delay 100L);
            finish_times := Proc.now () :: !finish_times)
      done);
  Alcotest.(check (list int64))
    "finish times" [ 100L; 100L; 200L ]
    (List.sort Int64.compare !finish_times)

let test_resource_large_request_not_starved () =
  let order = ref [] in
  Testkit.run_sim (fun _ ->
      let r = Resource.create ~name:"r" ~capacity:2 in
      Proc.spawn (fun () ->
          Resource.with_resource r 2 (fun () ->
              order := "big1" :: !order;
              Proc.delay 10L));
      Proc.spawn (fun () ->
          Resource.with_resource r 2 (fun () ->
              order := "big2" :: !order;
              Proc.delay 10L));
      Proc.spawn (fun () ->
          Resource.with_resource r 1 (fun () ->
              order := "small" :: !order;
              Proc.delay 10L)));
  Alcotest.(check (list string))
    "big request granted before later small one"
    [ "big1"; "big2"; "small" ]
    (List.rev !order)

let test_try_acquire () =
  Testkit.run_sim (fun _ ->
      let r = Resource.create ~name:"r" ~capacity:2 in
      Alcotest.(check bool) "first" true (Resource.try_acquire r 2);
      Alcotest.(check bool) "exhausted" false (Resource.try_acquire r 1);
      Resource.release r 2;
      Alcotest.(check bool) "after release" true (Resource.try_acquire r 1))

(* --- condition variables --- *)

let test_condvar_signal () =
  let woken = ref (-1L) in
  Testkit.run_sim (fun engine ->
      let c = Condvar.create engine in
      Proc.spawn (fun () ->
          Condvar.wait c;
          woken := Proc.now ());
      Proc.delay 50L;
      ignore (Condvar.signal c));
  check_i64 "woken at signal time" 50L !woken

let test_condvar_timeout () =
  let outcome = ref Condvar.Signaled in
  Testkit.run_sim (fun engine ->
      let c = Condvar.create engine in
      outcome := Condvar.wait_timeout c ~timeout:30L;
      check_i64 "timed out at deadline" 30L (Proc.now ()));
  check_bool "timeout outcome" true (!outcome = Condvar.Timed_out)

let test_condvar_signal_beats_timeout () =
  let outcome = ref Condvar.Timed_out in
  Testkit.run_sim (fun engine ->
      let c = Condvar.create engine in
      Proc.spawn (fun () ->
          Proc.delay 10L;
          ignore (Condvar.signal c));
      outcome := Condvar.wait_timeout c ~timeout:1000L;
      check_i64 "woken at signal" 10L (Proc.now ()));
  check_bool "signaled" true (!outcome = Condvar.Signaled)

let test_condvar_broadcast () =
  let woken = ref 0 in
  Testkit.run_sim (fun engine ->
      let c = Condvar.create engine in
      for _ = 1 to 5 do
        Proc.spawn (fun () ->
            Condvar.wait c;
            incr woken)
      done;
      Proc.delay 10L;
      let n = Condvar.broadcast c in
      check_int "broadcast count" 5 n);
  check_int "all woken" 5 !woken

let test_condvar_timeout_then_signal_no_double_wake () =
  (* A waiter that timed out must not also consume a later signal. *)
  let second_woken = ref false in
  Testkit.run_sim (fun engine ->
      let c = Condvar.create engine in
      Proc.spawn (fun () -> ignore (Condvar.wait_timeout c ~timeout:5L));
      Proc.spawn (fun () ->
          Condvar.wait c;
          second_woken := true);
      Proc.delay 50L;
      ignore (Condvar.signal c));
  check_bool "signal reached the live waiter" true !second_woken

(* --- rwlock --- *)

let test_rwlock_readers_share () =
  let concurrent = ref 0 in
  let peak = ref 0 in
  Testkit.run_sim (fun _ ->
      let l = Rwlock.create () in
      for _ = 1 to 4 do
        Proc.spawn (fun () ->
            Rwlock.with_read l (fun () ->
                incr concurrent;
                peak := max !peak !concurrent;
                Proc.delay 10L;
                decr concurrent))
      done);
  check_int "readers run concurrently" 4 !peak

let test_rwlock_writer_excludes () =
  let trace = ref [] in
  Testkit.run_sim (fun _ ->
      let l = Rwlock.create () in
      Proc.spawn (fun () ->
          Rwlock.with_write l (fun () ->
              trace := ("w-start", Proc.now ()) :: !trace;
              Proc.delay 100L;
              trace := ("w-end", Proc.now ()) :: !trace));
      Proc.spawn (fun () ->
          Proc.delay 10L;
          Rwlock.with_read l (fun () ->
              trace := ("r", Proc.now ()) :: !trace)));
  let r_time = List.assoc "r" !trace in
  check_i64 "reader waited for writer" 100L r_time

let test_rwlock_writer_not_starved () =
  (* Writer queued behind a reader; a later reader must wait behind the
     writer. *)
  let trace = ref [] in
  Testkit.run_sim (fun _ ->
      let l = Rwlock.create () in
      Proc.spawn (fun () ->
          Rwlock.with_read l (fun () ->
              trace := ("r1", Proc.now ()) :: !trace;
              Proc.delay 50L));
      Proc.spawn (fun () ->
          Proc.delay 10L;
          Rwlock.with_write l (fun () ->
              trace := ("w", Proc.now ()) :: !trace;
              Proc.delay 50L));
      Proc.spawn (fun () ->
          Proc.delay 20L;
          Rwlock.with_read l (fun () -> trace := ("r2", Proc.now ()) :: !trace)));
  let w_time = List.assoc "w" !trace in
  let r2_time = List.assoc "r2" !trace in
  check_i64 "writer ran when r1 released" 50L w_time;
  check_i64 "late reader waited for writer" 100L r2_time

(* --- rng / zipf --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    check_i64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check_bool "in bounds" true (v >= 0 && v < 17);
    let f = Rng.float rng in
    check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let r = Rng.int_in_range rng ~lo:5 ~hi:9 in
    check_bool "range inclusive" true (r >= 5 && r <= 9)
  done

let test_zipf_skew () =
  let rng = Rng.create ~seed:11L in
  let z = Zipf.create ~n:1000 ~theta:0.9 in
  let counts = Array.make 1000 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let v = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 1000);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 should be far more popular than rank 500. *)
  check_bool "skewed"
    true
    (counts.(0) > 20 * max 1 counts.(500));
  (* Top 10% of ranks should account for the majority of accesses. *)
  let top = Array.sub counts 0 100 |> Array.fold_left ( + ) 0 in
  check_bool "top-heavy" true (float_of_int top /. float_of_int samples > 0.5)

let test_zipf_uniform_theta0 () =
  let rng = Rng.create ~seed:13L in
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "roughly uniform" true (c > 3500 && c < 6500))
    counts

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "random monotone" `Quick test_heap_random;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay advances clock" `Quick
            test_delay_advances_clock;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "interleaving" `Quick test_spawn_interleaving;
          Alcotest.test_case "run until horizon" `Quick test_run_until_horizon;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "negative delay is a no-op" `Quick
            test_negative_delay_rejected;
        ] );
      ( "resource",
        [
          Alcotest.test_case "limits concurrency" `Quick
            test_resource_limits_concurrency;
          Alcotest.test_case "FIFO grants" `Quick test_resource_fifo;
          Alcotest.test_case "bandwidth timing" `Quick
            test_resource_bandwidth_timing;
          Alcotest.test_case "no starvation of large requests" `Quick
            test_resource_large_request_not_starved;
          Alcotest.test_case "try_acquire" `Quick test_try_acquire;
        ] );
      ( "condvar",
        [
          Alcotest.test_case "signal" `Quick test_condvar_signal;
          Alcotest.test_case "timeout" `Quick test_condvar_timeout;
          Alcotest.test_case "signal beats timeout" `Quick
            test_condvar_signal_beats_timeout;
          Alcotest.test_case "broadcast" `Quick test_condvar_broadcast;
          Alcotest.test_case "timed-out waiter skipped" `Quick
            test_condvar_timeout_then_signal_no_double_wake;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer excludes" `Quick
            test_rwlock_writer_excludes;
          Alcotest.test_case "writer not starved" `Quick
            test_rwlock_writer_not_starved;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform_theta0;
        ] );
    ]
