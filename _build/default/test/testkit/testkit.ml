(* Shared helpers for the test suites. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device

(* Run [f] inside a fresh simulation; the engine runs until the process
   tree finishes, and [f]'s result is returned. *)
let run_sim f =
  let engine = Engine.create () in
  let result = ref None in
  Engine.spawn engine ~name:"test" (fun () -> result := Some (f engine));
  Engine.run engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation did not complete the test process"

(* A small device configuration for unit tests: 8 MB NVMM. *)
let small_config =
  { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }

let make_device ?(config = small_config) ?stats engine =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  Device.create engine stats config

(* Fresh PMFS on a fresh device, inside a running simulation. *)
let make_pmfs ?config ?stats ?(sync_mount = false) engine =
  let device = make_device ?config ?stats engine in
  let fs =
    Hinfs_pmfs.Pmfs.mkfs_and_mount device ~journal_blocks:32 ~sync_mount ()
  in
  (device, fs)

(* Fresh HiNFS on a fresh device, inside a running simulation. Daemons are
   off by default so the engine drains when the test finishes; pass
   [daemons:true] and remember to unmount. *)
let make_hinfs ?config ?stats ?hcfg ?(sync_mount = false) ?(daemons = false)
    engine =
  let device = make_device ?config ?stats engine in
  let fs =
    Hinfs.Fs.mkfs_and_mount device ~journal_blocks:32 ?hcfg ~sync_mount
      ~daemons ()
  in
  (device, fs)

(* A small HiNFS buffer configuration for unit tests. *)
let small_hcfg =
  { Hinfs.Hconfig.default with Hinfs.Hconfig.buffer_bytes = 256 * 4096 }

(* Deterministic pseudo-random payload. *)
let pattern_bytes ~seed len =
  let rng = Rng.create ~seed:(Int64.of_int (seed * 7919)) in
  Bytes.init len (fun _ -> Char.chr (Rng.int rng 256))

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)

(* Convert qcheck tests to alcotest cases. *)
let qcheck_cases tests = List.map QCheck_alcotest.to_alcotest tests
