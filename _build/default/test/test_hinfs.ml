(* HiNFS tests: write buffering, read consistency between DRAM and NVMM,
   CLFW, the Buffer Benefit Model, watermark-driven writeback, ordered-mode
   crash consistency, and the ablation knobs. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module H = Hinfs.Fs
module Hconfig = Hinfs.Hconfig
module Clbitmap = Hinfs.Clbitmap
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let root = Layout.root_ino

let read_back fs ~ino ~off ~len =
  let buf = Bytes.create len in
  let n = H.read fs ~ino ~off ~len ~into:buf ~into_off:0 in
  (Bytes.sub buf 0 n, n)

(* --- clbitmap --- *)

let test_clbitmap_ranges () =
  let m = Clbitmap.of_byte_range ~cacheline_size:64 ~off:0 ~len:4096 in
  check_int "full block" 64 (Clbitmap.count m);
  let m = Clbitmap.of_byte_range ~cacheline_size:64 ~off:100 ~len:8 in
  check_int "within one line" 1 (Clbitmap.count m);
  check_bool "line 1" true (Clbitmap.mem m 1);
  let m = Clbitmap.of_byte_range ~cacheline_size:64 ~off:60 ~len:8 in
  check_int "straddles two lines" 2 (Clbitmap.count m);
  check_int "empty" 0 (Clbitmap.count (Clbitmap.of_byte_range ~cacheline_size:64 ~off:0 ~len:0))

let test_clbitmap_boundary_partials () =
  let p = Clbitmap.boundary_partials ~cacheline_size:64 ~off:0 ~len:4096 in
  check_int "aligned write has no partials" 0 (Clbitmap.count p);
  let p = Clbitmap.boundary_partials ~cacheline_size:64 ~off:0 ~len:112 in
  (* Paper's example (§3.2.1): writing 0..112 needs only the second line
     fetched. *)
  check_int "one partial line" 1 (Clbitmap.count p);
  check_bool "it is line 1" true (Clbitmap.mem p 1);
  let p = Clbitmap.boundary_partials ~cacheline_size:64 ~off:30 ~len:20 in
  check_int "head partial only" 1 (Clbitmap.count p);
  let p = Clbitmap.boundary_partials ~cacheline_size:64 ~off:30 ~len:100 in
  check_int "head and tail partial" 2 (Clbitmap.count p)

let test_clbitmap_runs () =
  let m = Clbitmap.add_range Clbitmap.empty ~first:2 ~last:5 in
  let m = Clbitmap.add_range m ~first:10 ~last:10 in
  let runs = ref [] in
  Clbitmap.iter_runs m ~nlines:12 (fun ~first ~count ~set ->
      runs := (first, count, set) :: !runs);
  Alcotest.(check (list (triple int int bool)))
    "runs"
    [ (0, 2, false); (2, 4, true); (6, 4, false); (10, 1, true); (11, 1, false) ]
    (List.rev !runs);
  check_int "count" 5 (Clbitmap.count m);
  check_int "full mask 64" 64 (Clbitmap.count (Clbitmap.full_mask 64))

(* --- buffering basics --- *)

let test_lazy_write_buffered_not_persistent () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~stats ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Testkit.pattern_bytes ~seed:1 8192 in
      let before = Stats.nvmm_bytes_written stats in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:8192 ~sync:false);
      (* Data sits in DRAM. NVMM traffic is only metadata: a zeroed index
         node (4 KB, the file grew past one block) plus undo-log entries —
         never the 8 KB of data. *)
      check_bool "buffered" true (H.is_block_buffered fs ~ino ~fblock:0);
      check_bool "no data written to NVMM" true
        (Int64.to_int (Int64.sub (Stats.nvmm_bytes_written stats) before)
        < 4096 + 2048);
      (* Reads see the buffered data. *)
      let data, n = read_back fs ~ino ~off:0 ~len:8192 in
      check_int "read length" 8192 n;
      Testkit.check_bytes "read from DRAM buffer" payload data;
      check_int "two lazy writes counted" 2 (Stats.lazy_writes stats);
      check_int "buffered blocks" 2 (H.buffered_blocks fs))

let test_fsync_persists_buffered_data () =
  Testkit.run_sim (fun engine ->
      let d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Testkit.pattern_bytes ~seed:2 10_000 in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:10_000 ~sync:false);
      check_int "pending txn open" 1 (H.pending_txns fs);
      H.fsync fs ~ino;
      check_int "pending txn committed" 0 (H.pending_txns fs);
      check_int "no dirty blocks" 0 (H.dirty_buffered_blocks fs);
      (* Crash: everything needed must be on the medium. *)
      Device.crash d;
      let fs2 = Pmfs.mount d () in
      let ino2 = Option.get (Pmfs.lookup fs2 ~dir:root "f") in
      let buf = Bytes.create 10_000 in
      let n = Pmfs.read fs2 ~ino:ino2 ~off:0 ~len:10_000 ~into:buf ~into_off:0 in
      check_int "size durable" 10_000 n;
      Testkit.check_bytes "data durable" payload buf)

let test_ordered_mode_crash_before_fsync () =
  Testkit.run_sim (fun engine ->
      let d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      (* Establish a committed 4 KB prefix. Overwrite it several times
         before the fsync so the Benefit Model sees coalescing and keeps
         the file Lazy-Persistent (otherwise the extension below would be
         routed direct and committed eagerly). *)
      let prefix = Testkit.pattern_bytes ~seed:3 4096 in
      for _ = 1 to 10 do
        ignore (H.write fs ~ino ~off:0 ~src:prefix ~src_off:0 ~len:4096 ~sync:false)
      done;
      H.fsync fs ~ino;
      (* Extend lazily, crash before any sync: the extension's metadata
         must roll back — no committed pointer may reference unwritten
         data (ordered mode). *)
      let ext = Testkit.pattern_bytes ~seed:4 8192 in
      ignore (H.write fs ~ino ~off:4096 ~src:ext ~src_off:0 ~len:8192 ~sync:false);
      Device.crash d;
      let fs2 = Pmfs.mount d () in
      let ino2 = Option.get (Pmfs.lookup fs2 ~dir:root "f") in
      check_int "size rolled back to last sync" 4096
        (Pmfs.inode_size fs2 ino2);
      let buf = Bytes.create 4096 in
      ignore (Pmfs.read fs2 ~ino:ino2 ~off:0 ~len:4096 ~into:buf ~into_off:0);
      Testkit.check_bytes "prefix intact" prefix buf)

let test_read_merges_dram_and_nvmm () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      (* Persist a full block, evict it from the buffer via fsync+unmount
         trickery: use direct PMFS write to place data only in NVMM. *)
      let nvmm_data = Bytes.make 4096 'N' in
      ignore
        (Pmfs.write_direct (H.pmfs fs) ~ino ~off:0 ~src:nvmm_data ~src_off:0
           ~len:4096);
      (* Lazy-write the middle cachelines: they land in DRAM only. *)
      let dram_data = Bytes.make 640 'D' in
      ignore (H.write fs ~ino ~off:1024 ~src:dram_data ~src_off:0 ~len:640 ~sync:false);
      (* A full-block read must merge: N...D...N *)
      let data, n = read_back fs ~ino ~off:0 ~len:4096 in
      check_int "length" 4096 n;
      let expected = Bytes.make 4096 'N' in
      Bytes.fill expected 1024 640 'D';
      Testkit.check_bytes "merged DRAM+NVMM view" expected data)

let test_unaligned_buffered_write_fetches_boundaries () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let base = Bytes.make 4096 'B' in
      ignore (Pmfs.write_direct (H.pmfs fs) ~ino ~off:0 ~src:base ~src_off:0 ~len:4096);
      (* Unaligned lazy write within the block. *)
      let patch = Bytes.make 100 'P' in
      ignore (H.write fs ~ino ~off:30 ~src:patch ~src_off:0 ~len:100 ~sync:false);
      let data, _ = read_back fs ~ino ~off:0 ~len:4096 in
      let expected = Bytes.make 4096 'B' in
      Bytes.fill expected 30 100 'P';
      Testkit.check_bytes "boundary bytes preserved" expected data;
      (* And after flushing, NVMM holds the same view. *)
      H.fsync fs ~ino;
      let data2, _ = read_back fs ~ino ~off:0 ~len:4096 in
      Testkit.check_bytes "after flush" expected data2)

let test_write_coalescing_reduces_nvmm_traffic () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~stats ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'x' in
      (* 10 overwrites of the same block, then one fsync: only ~4 KB of
         data reaches NVMM, not 40 KB. *)
      for i = 0 to 9 do
        Bytes.fill payload 0 4096 (Char.chr (Char.code 'a' + i));
        ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false)
      done;
      let before = Stats.nvmm_bytes_written stats in
      H.fsync fs ~ino;
      let flushed = Int64.to_int (Int64.sub (Stats.nvmm_bytes_written stats) before) in
      check_bool "one block of data flushed" true
        (flushed >= 4096 && flushed < 8192);
      let data, _ = read_back fs ~ino ~off:0 ~len:4096 in
      Testkit.check_bytes "last write wins" payload data)

(* --- CLFW vs NCLFW (Fig 9 mechanism) --- *)

let nvmm_flush_bytes_for ~clfw =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let hcfg = { Testkit.small_hcfg with Hconfig.clfw } in
      let _d, fs = Testkit.make_hinfs ~stats ~hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      (* Persist a block first so fetches have a source. *)
      let base = Bytes.make 4096 'B' in
      ignore (Pmfs.write_direct (H.pmfs fs) ~ino ~off:0 ~src:base ~src_off:0 ~len:4096);
      let before = Stats.nvmm_bytes_written stats in
      (* Dirty 64 bytes, then fsync. *)
      let small = Bytes.make 64 'S' in
      ignore (H.write fs ~ino ~off:128 ~src:small ~src_off:0 ~len:64 ~sync:false);
      H.fsync fs ~ino;
      Int64.to_int (Int64.sub (Stats.nvmm_bytes_written stats) before))

let test_clfw_flushes_only_dirty_lines () =
  let with_clfw = nvmm_flush_bytes_for ~clfw:true in
  let without = nvmm_flush_bytes_for ~clfw:false in
  check_bool "clfw flushes one line" true (with_clfw < 512);
  check_bool "nclfw flushes whole block" true (without >= 4096);
  check_bool "clfw strictly better" true (with_clfw * 8 < without)

let test_clfw_fetch_granularity () =
  (* An unaligned write to an uncached NVMM-resident block reads only the
     boundary cachelines under CLFW, the whole block without it. *)
  let fetch_bytes ~clfw =
    let stats = Stats.create () in
    Testkit.run_sim (fun engine ->
        let hcfg = { Testkit.small_hcfg with Hconfig.clfw } in
        let _d, fs = Testkit.make_hinfs ~stats ~hcfg engine in
        let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
        let base = Bytes.make 4096 'B' in
        ignore (Pmfs.write_direct (H.pmfs fs) ~ino ~off:0 ~src:base ~src_off:0 ~len:4096);
        let before = Stats.nvmm_bytes_read stats in
        let patch = Bytes.make 100 'P' in
        ignore (H.write fs ~ino ~off:30 ~src:patch ~src_off:0 ~len:100 ~sync:false);
        Int64.to_int (Int64.sub (Stats.nvmm_bytes_read stats) before))
  in
  let clfw = fetch_bytes ~clfw:true in
  let nclfw = fetch_bytes ~clfw:false in
  check_int "clfw fetches two boundary lines" 128 clfw;
  check_int "nclfw fetches the whole block" 4096 nclfw

(* --- Buffer Benefit Model (Fig 6 mechanism) --- *)

let test_benefit_model_turns_block_eager () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~stats ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'x' in
      check_bool "starts lazy" false (H.block_state_eager fs ~ino ~fblock:0);
      (* Write once then fsync: N_cw = N_cf = 64, inequality violated ->
         Eager. *)
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
      H.fsync fs ~ino;
      check_bool "eager after wasteful sync" true
        (H.block_state_eager fs ~ino ~fblock:0);
      (* The next asynchronous write to this block goes straight to NVMM. *)
      let before = Stats.nvmm_bytes_written stats in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
      let direct = Int64.to_int (Int64.sub (Stats.nvmm_bytes_written stats) before) in
      check_bool "eager write persisted immediately" true (direct >= 4096);
      check_int "no dirty buffered data left" 0 (H.dirty_buffered_blocks fs);
      check_int "eager writes counted" 1 (Stats.eager_writes stats))

let test_benefit_model_keeps_coalescing_lazy () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'x' in
      (* Many overwrites between syncs: N_cw = 20*64, N_cf = 64; inequality
         satisfied -> stays Lazy. *)
      for _ = 1 to 20 do
        ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false)
      done;
      H.fsync fs ~ino;
      check_bool "stays lazy when coalescing pays" false
        (H.block_state_eager fs ~ino ~fblock:0))

let test_eager_state_decays () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'x' in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
      H.fsync fs ~ino;
      check_bool "eager" true (H.block_state_eager fs ~ino ~fblock:0);
      (* 6 virtual seconds without a sync: decays to lazy (default 5 s). *)
      Proc.delay 6_000_000_000L;
      check_bool "decayed to lazy" false (H.block_state_eager fs ~ino ~fblock:0))

let test_model_accuracy_stat () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~stats ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'x' in
      (* Repeated identical write->fsync cycles: after the first sync each
         prediction matches the previous one (accurate). *)
      for _ = 1 to 5 do
        ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
        H.fsync fs ~ino
      done);
  check_int "four comparable predictions" 4 (Stats.bbm_predictions stats);
  check_bool "all accurate" true (Stats.bbm_accuracy stats = 1.0)

let test_sync_write_with_buffered_block_evicts () =
  Testkit.run_sim (fun engine ->
      let d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'L' in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
      check_bool "buffered" true (H.is_block_buffered fs ~ino ~fblock:0);
      (* Case-1 eager write to the buffered block: write to DRAM, then
         flush synchronously (§3.3.2's consistency rule). *)
      let sync_payload = Bytes.make 4096 'S' in
      ignore (H.write fs ~ino ~off:0 ~src:sync_payload ~src_off:0 ~len:4096 ~sync:true);
      check_int "nothing dirty after sync write" 0
        (H.dirty_buffered_blocks fs);
      let data, _ = read_back fs ~ino ~off:0 ~len:4096 in
      Testkit.check_bytes "sync write visible" sync_payload data;
      (* The sync write is durable: crash and verify on the image. *)
      let image = Device.snapshot d in
      let d2 =
        Device.of_snapshot (Device.engine d) (Stats.create ())
          (Device.config d) image
      in
      let fs2 = Pmfs.mount d2 () in
      let ino2 = Option.get (Pmfs.lookup fs2 ~dir:root "f") in
      let buf = Bytes.create 4096 in
      let n = Pmfs.read fs2 ~ino:ino2 ~off:0 ~len:4096 ~into:buf ~into_off:0 in
      check_int "durable size" 4096 n;
      Testkit.check_bytes "durable content" sync_payload buf)

(* A sparse block (only some cachelines ever written) must read as zeros
   around the data after fsync + crash — the first writeback completes the
   home block. *)
let test_sparse_block_home_completed_at_fsync () =
  Testkit.run_sim (fun engine ->
      let d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "sparse" in
      (* Dirty the medium first so stale bytes exist to leak. *)
      let free_probe = Pmfs.free_data_blocks (H.pmfs fs) in
      ignore free_probe;
      let junk_ino = Pmfs.create_file (H.pmfs fs) ~dir:root "junk" in
      let junk = Bytes.make 8192 'J' in
      ignore (Pmfs.write_direct (H.pmfs fs) ~ino:junk_ino ~off:0 ~src:junk ~src_off:0 ~len:8192);
      Pmfs.unlink (H.pmfs fs) ~dir:root "junk";
      (* Write 100 bytes mid-block, extend size past them, fsync. *)
      let data = Bytes.make 100 'D' in
      ignore (H.write fs ~ino ~off:1000 ~src:data ~src_off:0 ~len:100 ~sync:false);
      let tail = Bytes.make 10 'T' in
      ignore (H.write fs ~ino ~off:3000 ~src:tail ~src_off:0 ~len:10 ~sync:false);
      H.fsync fs ~ino;
      Device.crash d;
      let fs2 = Pmfs.mount d () in
      let ino2 = Option.get (Pmfs.lookup fs2 ~dir:root "sparse") in
      let buf = Bytes.create 3010 in
      let n = Pmfs.read fs2 ~ino:ino2 ~off:0 ~len:3010 ~into:buf ~into_off:0 in
      check_int "size durable" 3010 n;
      (* Never-written regions read as zeros, not stale junk. *)
      check_bool "prefix zeros" true
        (Bytes.sub_string buf 0 1000 = String.make 1000 '\000');
      Alcotest.(check string) "data" (Bytes.to_string data)
        (Bytes.sub_string buf 1000 100);
      check_bool "gap zeros" true
        (Bytes.sub_string buf 1100 1900 = String.make 1900 '\000'))

(* The write path's journal backpressure keeps a tiny journal from
   overflowing under a stream of lazy allocating writes. *)
let test_journal_backpressure () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let fs =
        H.mkfs_and_mount d ~journal_blocks:8 ~hcfg:Testkit.small_hcfg
          ~daemons:false ()
      in
      let h = H.handle fs in
      (* 8 blocks x 64 slots = 512 slots; these writes would need far more
         without backpressure-triggered commits. *)
      for i = 0 to 63 do
        let fd =
          h.Vfs.open_ (Printf.sprintf "/f%d" i) { Types.creat with Types.read = true }
        in
        let payload = Testkit.pattern_bytes ~seed:i (8 * 4096) in
        ignore (h.Vfs.write fd payload (8 * 4096));
        h.Vfs.close fd
      done;
      (* Spot-check content. *)
      let fd = h.Vfs.open_ "/f63" Types.rdonly in
      let buf = Bytes.create (8 * 4096) in
      ignore (h.Vfs.read fd buf (8 * 4096));
      Testkit.check_bytes "data survived backpressure"
        (Testkit.pattern_bytes ~seed:63 (8 * 4096))
        buf;
      h.Vfs.close fd)

(* Rename over an existing file drops the victim's buffers like unlink. *)
let test_rename_replace_drops_victim_buffers () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~stats ~hcfg:Testkit.small_hcfg engine in
      let h = H.handle fs in
      let fd = h.Vfs.open_ "/victim" Types.creat in
      ignore (h.Vfs.write fd (Bytes.make (4 * 4096) 'v') (4 * 4096));
      h.Vfs.close fd;
      let fd = h.Vfs.open_ "/new" Types.creat in
      ignore (h.Vfs.write fd (Bytes.make 4096 'n') 4096);
      h.Vfs.close fd;
      h.Vfs.rename "/new" "/victim";
      check_bool "victim buffers dropped" true (Stats.dead_block_drops stats >= 4);
      let fd = h.Vfs.open_ "/victim" Types.rdonly in
      let buf = Bytes.create 4096 in
      ignore (h.Vfs.read fd buf 4096);
      Alcotest.(check char) "renamed content" 'n' (Bytes.get buf 0);
      h.Vfs.close fd)

(* --- HiNFS-WB ablation --- *)

let test_wb_mode_buffers_everything () =
  Testkit.run_sim (fun engine ->
      let hcfg = { Testkit.small_hcfg with Hconfig.checker = false } in
      let _d, fs = Testkit.make_hinfs ~hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'x' in
      (* fsync storms that would flip the checker: with the checker off the
         block keeps being buffered. *)
      for _ = 1 to 3 do
        ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
        H.fsync fs ~ino
      done;
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
      check_bool "still buffered under HiNFS-WB" true
        (H.is_block_buffered fs ~ino ~fblock:0))

(* --- watermarks, stalls, daemons --- *)

let test_pool_exhaustion_inline_reclaim () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      (* Tiny pool: 16 blocks, no daemons -> inline reclaim on the write
         path. *)
      let hcfg = { Testkit.small_hcfg with Hconfig.buffer_bytes = 16 * 4096 } in
      let _d, fs = Testkit.make_hinfs ~stats ~hcfg engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Testkit.pattern_bytes ~seed:5 (64 * 4096) in
      ignore
        (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:(64 * 4096)
           ~sync:false);
      (* All 64 blocks were written through a 16-block pool. *)
      check_bool "stalled at least once" true (Stats.writeback_stalls stats > 0);
      check_bool "evictions happened" true (Stats.evictions stats > 0);
      let data, n = read_back fs ~ino ~off:0 ~len:(64 * 4096) in
      check_int "full read" (64 * 4096) n;
      Testkit.check_bytes "data correct across evictions" payload data)

let test_daemon_reclaims_to_high_watermark () =
  Testkit.run_sim (fun engine ->
      let hcfg =
        {
          Testkit.small_hcfg with
          Hconfig.buffer_bytes = 32 * 4096;
          Hconfig.writeback_threads = 1;
        }
      in
      let _d, fs = Testkit.make_hinfs ~hcfg ~daemons:true engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      (* Fill the pool past the 5% low watermark (free <= 1 of 32) so the
         allocation path signals the writeback daemon. *)
      let payload = Testkit.pattern_bytes ~seed:6 (31 * 4096) in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:(31 * 4096) ~sync:false);
      check_bool "pool nearly full" true (H.free_buffer_blocks fs <= 1);
      (* Let the daemons run (they wake on the low-watermark signal). *)
      Proc.delay 1_000_000_000L;
      (* high watermark = 20% of 32 = 6 free. *)
      check_bool "reclaimed to high watermark" true
        (H.free_buffer_blocks fs >= 6);
      (* Data still correct (flushed + readable from NVMM/DRAM mix). *)
      let data, _ = read_back fs ~ino ~off:0 ~len:(31 * 4096) in
      Testkit.check_bytes "data survives reclaim" payload data;
      H.unmount fs)

let test_age_flush_cleans_old_blocks () =
  Testkit.run_sim (fun engine ->
      let hcfg =
        { Testkit.small_hcfg with Hconfig.age_flush_ns = 2_000_000_000L }
      in
      let _d, fs = Testkit.make_hinfs ~hcfg ~daemons:true engine in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "f" in
      let payload = Bytes.make 4096 'x' in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096 ~sync:false);
      check_int "dirty" 1 (H.dirty_buffered_blocks fs);
      (* After the age threshold plus a periodic wakeup, the daemon cleans
         (but does not evict) the block. *)
      Proc.delay 8_000_000_000L;
      check_int "cleaned by age flush" 0 (H.dirty_buffered_blocks fs);
      check_bool "still buffered" true (H.is_block_buffered fs ~ino ~fblock:0);
      check_int "ordered txn committed by daemon" 0 (H.pending_txns fs);
      H.unmount fs)

let test_unlink_drops_dirty_buffers_without_writeback () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device ~stats engine in
      let fs = H.mkfs_and_mount d ~journal_blocks:32 ~hcfg:Testkit.small_hcfg ~daemons:false () in
      let h = H.handle fs in
      (* Prime the root directory's dirent block so it does not read as a
         leak below. *)
      let wfd = h.Vfs.open_ "/warmup" Types.creat in
      h.Vfs.close wfd;
      h.Vfs.unlink "/warmup";
      let free0 = Pmfs.free_data_blocks (H.pmfs fs) in
      let fd = h.Vfs.open_ "/doomed" Types.creat in
      let payload = Testkit.pattern_bytes ~seed:7 (20 * 4096) in
      ignore (h.Vfs.write fd payload (20 * 4096));
      h.Vfs.close fd;
      let before = Stats.nvmm_bytes_written stats in
      h.Vfs.unlink "/doomed";
      let delta = Int64.to_int (Int64.sub (Stats.nvmm_bytes_written stats) before) in
      (* No data writeback happened for the dying file (only journal
         cleanup traffic). *)
      check_bool "no data written back on unlink" true (delta < 8192);
      check_int "dead blocks dropped" 20 (Stats.dead_block_drops stats);
      (* The NVMM home blocks allocated under the aborted transaction were
         reclaimed. *)
      check_int "NVMM space fully reclaimed" free0
        (Pmfs.free_data_blocks (H.pmfs fs));
      check_int "no leaked buffer blocks" 0 (H.buffered_blocks fs))

let test_unmount_flushes_everything () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let fs = H.mkfs_and_mount d ~journal_blocks:32 ~hcfg:Testkit.small_hcfg ~daemons:true () in
      let ino = Pmfs.create_file (H.pmfs fs) ~dir:root "persist" in
      let payload = Testkit.pattern_bytes ~seed:8 50_000 in
      ignore (H.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:50_000 ~sync:false);
      H.unmount fs;
      (* Remount as plain PMFS and verify everything is there. *)
      let fs2 = Pmfs.mount d () in
      check_int "clean unmount" 0 (Pmfs.recovered_txns fs2);
      let ino2 = Option.get (Pmfs.lookup fs2 ~dir:root "persist") in
      let buf = Bytes.create 50_000 in
      let n = Pmfs.read fs2 ~ino:ino2 ~off:0 ~len:50_000 ~into:buf ~into_off:0 in
      check_int "size" 50_000 n;
      Testkit.check_bytes "data flushed at unmount" payload buf)

(* --- mmap --- *)

let test_mmap_flushes_and_pins_eager () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_hinfs ~hcfg:Testkit.small_hcfg engine in
      let h = H.handle fs in
      let fd = h.Vfs.open_ "/m" { Types.creat with Types.read = true } in
      let payload = Testkit.pattern_bytes ~seed:9 8192 in
      ignore (h.Vfs.write fd payload 8192);
      let ino = (h.Vfs.fstat fd).Types.ino in
      check_bool "buffered before mmap" true (H.buffered_blocks fs > 0);
      h.Vfs.mmap fd;
      check_int "flushed and evicted at mmap" 0 (H.buffered_blocks fs);
      check_bool "pinned eager" true (H.block_state_eager fs ~ino ~fblock:0);
      (* Writes while mmapped stay direct. *)
      ignore (h.Vfs.pwrite fd ~off:0 payload 4096);
      check_bool "not re-buffered" false (H.is_block_buffered fs ~ino ~fblock:0);
      h.Vfs.munmap fd;
      Proc.delay 6_000_000_000L;
      check_bool "lazy again after munmap + decay" false
        (H.block_state_eager fs ~ino ~fblock:0);
      h.Vfs.close fd)

(* --- concurrency --- *)

let test_concurrent_writers_shared_small_pool () =
  Testkit.run_sim (fun engine ->
      let hcfg =
        { Testkit.small_hcfg with Hconfig.buffer_bytes = 24 * 4096 }
      in
      let _d, fs = Testkit.make_hinfs ~hcfg ~daemons:true engine in
      let h = H.handle fs in
      for i = 0 to 5 do
        Proc.spawn (fun () ->
            let path = Printf.sprintf "/w%d" i in
            let fd = h.Vfs.open_ path { Types.creat with Types.read = true } in
            let payload = Testkit.pattern_bytes ~seed:(50 + i) (16 * 4096) in
            ignore (h.Vfs.write fd payload (16 * 4096));
            h.Vfs.fsync fd;
            h.Vfs.seek fd 0;
            let buf = Bytes.create (16 * 4096) in
            ignore (h.Vfs.read fd buf (16 * 4096));
            Testkit.check_bytes "concurrent round trip" payload buf;
            h.Vfs.close fd)
      done;
      (* Give everything time to finish, then stop daemons. *)
      Proc.delay 60_000_000_000L;
      H.unmount fs)

(* --- randomized model test --- *)

let hinfs_model_prop =
  QCheck.Test.make ~name:"hinfs matches model under random ops + daemons"
    ~count:25
    QCheck.(small_nat)
    (fun seed ->
      Testkit.run_sim (fun engine ->
          let hcfg =
            { Testkit.small_hcfg with Hconfig.buffer_bytes = 32 * 4096 }
          in
          let _d, fs = Testkit.make_hinfs ~hcfg ~daemons:true engine in
          let h = H.handle fs in
          let rng = Rng.create ~seed:(Int64.of_int ((seed * 977) + 3)) in
          let model : (string, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
          let paths = Array.init 6 (fun i -> Printf.sprintf "/r%d" i) in
          let ok = ref true in
          for step = 0 to 250 do
            let path = Rng.pick rng paths in
            (match Rng.int rng 7 with
            | 0 | 1 ->
              let len = Rng.int rng 20_000 in
              let payload = Testkit.pattern_bytes ~seed:step len in
              let fd =
                h.Vfs.open_ path { Types.creat with Types.truncate = true }
              in
              ignore (h.Vfs.write fd payload len);
              h.Vfs.close fd;
              Hashtbl.replace model path (Bytes.copy payload)
            | 2 -> (
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some content ->
                let size = Bytes.length content in
                let off = Rng.int rng (size + 5000) in
                let len = 1 + Rng.int rng 6000 in
                let payload = Testkit.pattern_bytes ~seed:(step + 13) len in
                let fd = h.Vfs.open_ path Types.rdwr in
                ignore (h.Vfs.pwrite fd ~off payload len);
                h.Vfs.close fd;
                let new_size = max size (off + len) in
                let updated = Bytes.make new_size '\000' in
                Bytes.blit content 0 updated 0 size;
                Bytes.blit payload 0 updated off len;
                Hashtbl.replace model path updated)
            | 3 -> (
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some _ ->
                let fd = h.Vfs.open_ path Types.rdwr in
                h.Vfs.fsync fd;
                h.Vfs.close fd)
            | 4 -> (
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some _ ->
                h.Vfs.unlink path;
                Hashtbl.remove model path)
            | 5 ->
              (* let virtual time pass: daemons run *)
              Proc.delay (Int64.of_int (Rng.int rng 3_000_000_000))
            | _ -> (
              match Hashtbl.find_opt model path with
              | None -> if h.Vfs.exists path then ok := false
              | Some content ->
                let fd = h.Vfs.open_ path Types.rdonly in
                let buf = Bytes.create (Bytes.length content + 64) in
                let n = h.Vfs.pread fd ~off:0 buf (Bytes.length buf) in
                h.Vfs.close fd;
                if
                  n <> Bytes.length content
                  || not (Bytes.equal (Bytes.sub buf 0 n) content)
                then ok := false))
          done;
          (* Final verification after unmount+remount via PMFS. *)
          h.Vfs.sync_all ();
          Hashtbl.iter
            (fun path content ->
              let fd = h.Vfs.open_ path Types.rdonly in
              let buf = Bytes.create (Bytes.length content) in
              let n = h.Vfs.pread fd ~off:0 buf (Bytes.length buf) in
              if n <> Bytes.length content || not (Bytes.equal buf content)
              then ok := false;
              h.Vfs.close fd)
            model;
          H.unmount fs;
          !ok))

(* Crash consistency property: at a random moment, crash; the remounted
   file system must be consistent (mountable, readable, sizes sane), and
   any file that was fsynced and untouched afterwards must hold exactly
   its synced content. *)
let hinfs_crash_prop =
  QCheck.Test.make ~name:"hinfs ordered-mode crash consistency" ~count:20
    QCheck.(pair small_nat (int_bound 3_000_000))
    (fun (seed, crash_at) ->
      Testkit.run_sim (fun engine ->
          let d = Testkit.make_device engine in
          let fs =
            H.mkfs_and_mount d ~journal_blocks:32 ~hcfg:Testkit.small_hcfg
              ~daemons:false ()
          in
          let rng = Rng.create ~seed:(Int64.of_int ((seed * 41) + 11)) in
          (* Per-path synced contents, updated only at fsync boundaries. A
             path's entry is removed as soon as it is touched again, so an
             entry present at crash time means "fsynced and untouched". *)
          let synced : (string, Bytes.t) Hashtbl.t = Hashtbl.create 8 in
          let h = H.handle fs in
          let crashed = ref false in
          Proc.spawn (fun () ->
              try
                for step = 0 to 120 do
                  if !crashed then raise Exit;
                  let path = Printf.sprintf "/c%d" (Rng.int rng 6) in
                  match Rng.int rng 3 with
                  | 0 ->
                    Hashtbl.remove synced path;
                    let len = 1 + Rng.int rng 16_000 in
                    let payload = Testkit.pattern_bytes ~seed:step len in
                    let fd =
                      h.Vfs.open_ path { Types.creat with Types.truncate = true }
                    in
                    ignore (h.Vfs.write fd payload len);
                    h.Vfs.close fd
                  | 1 -> (
                    match h.Vfs.exists path with
                    | false -> ()
                    | true ->
                      let fd = h.Vfs.open_ path Types.rdwr in
                      h.Vfs.fsync fd;
                      let st = h.Vfs.fstat fd in
                      let buf = Bytes.create st.Types.size in
                      ignore (h.Vfs.pread fd ~off:0 buf st.Types.size);
                      h.Vfs.close fd;
                      if not !crashed then Hashtbl.replace synced path buf)
                  | _ -> (
                    Hashtbl.remove synced path;
                    try h.Vfs.unlink path with Errno.Fs_error _ -> ())
                done
              with
              | Engine.Stopped | Exit -> ()
              | _ when !crashed -> ());
          Proc.delay (Int64.of_int crash_at);
          (* Crash: freeze the persistent image and quiesce the op process
             (a real crash stops execution). *)
          let image = Device.snapshot d in
          crashed := true;
          let synced_at_crash = Hashtbl.copy synced in
          let d2 =
            Device.of_snapshot
              (Device.engine d)
              (Hinfs_stats.Stats.create ())
              (Device.config d) image
          in
          let fs2 = Pmfs.mount d2 () in
          let ok = ref true in
          (* Global consistency: every directory entry resolves and reads. *)
          List.iter
            (fun (_name, ino) ->
              match Pmfs.stat_of fs2 ino with
              | stat ->
                if stat.Types.size < 0 then ok := false;
                let buf = Bytes.create (min stat.Types.size 64_000) in
                (try
                   ignore
                     (Pmfs.read fs2 ~ino ~off:0 ~len:(Bytes.length buf)
                        ~into:buf ~into_off:0)
                 with _ -> ok := false)
              | exception _ -> ok := false)
            (Pmfs.readdir fs2 ~dir:root);
          (* Durability: files whose last pre-crash action was an fsync
             hold exactly their synced contents. *)
          Hashtbl.iter
            (fun path content ->
              let name = String.sub path 1 (String.length path - 1) in
              match Pmfs.lookup fs2 ~dir:root name with
              | None -> ok := false
              | Some ino ->
                let size = Pmfs.inode_size fs2 ino in
                if size <> Bytes.length content then ok := false
                else begin
                  let buf = Bytes.create size in
                  ignore
                    (Pmfs.read fs2 ~ino ~off:0 ~len:size ~into:buf ~into_off:0);
                  if not (Bytes.equal buf content) then ok := false
                end)
            synced_at_crash;
          !ok))

let () =
  Alcotest.run "hinfs"
    [
      ( "clbitmap",
        [
          Alcotest.test_case "byte ranges" `Quick test_clbitmap_ranges;
          Alcotest.test_case "boundary partials" `Quick
            test_clbitmap_boundary_partials;
          Alcotest.test_case "runs" `Quick test_clbitmap_runs;
        ] );
      ( "buffering",
        [
          Alcotest.test_case "lazy write buffered" `Quick
            test_lazy_write_buffered_not_persistent;
          Alcotest.test_case "fsync persists" `Quick
            test_fsync_persists_buffered_data;
          Alcotest.test_case "ordered mode rollback" `Quick
            test_ordered_mode_crash_before_fsync;
          Alcotest.test_case "read merges DRAM+NVMM" `Quick
            test_read_merges_dram_and_nvmm;
          Alcotest.test_case "unaligned write boundaries" `Quick
            test_unaligned_buffered_write_fetches_boundaries;
          Alcotest.test_case "write coalescing" `Quick
            test_write_coalescing_reduces_nvmm_traffic;
          Alcotest.test_case "sparse home completed at fsync" `Quick
            test_sparse_block_home_completed_at_fsync;
          Alcotest.test_case "journal backpressure" `Quick
            test_journal_backpressure;
          Alcotest.test_case "rename drops victim buffers" `Quick
            test_rename_replace_drops_victim_buffers;
        ] );
      ( "clfw",
        [
          Alcotest.test_case "flush granularity" `Quick
            test_clfw_flushes_only_dirty_lines;
          Alcotest.test_case "fetch granularity" `Quick
            test_clfw_fetch_granularity;
        ] );
      ( "benefit-model",
        [
          Alcotest.test_case "turns eager" `Quick
            test_benefit_model_turns_block_eager;
          Alcotest.test_case "keeps coalescing lazy" `Quick
            test_benefit_model_keeps_coalescing_lazy;
          Alcotest.test_case "eager decays" `Quick test_eager_state_decays;
          Alcotest.test_case "accuracy stat" `Quick test_model_accuracy_stat;
          Alcotest.test_case "sync write evicts buffered" `Quick
            test_sync_write_with_buffered_block_evicts;
          Alcotest.test_case "HiNFS-WB buffers everything" `Quick
            test_wb_mode_buffers_everything;
        ] );
      ( "writeback",
        [
          Alcotest.test_case "inline reclaim on exhaustion" `Quick
            test_pool_exhaustion_inline_reclaim;
          Alcotest.test_case "daemon reclaims to high watermark" `Quick
            test_daemon_reclaims_to_high_watermark;
          Alcotest.test_case "age flush" `Quick test_age_flush_cleans_old_blocks;
          Alcotest.test_case "unlink drops buffers" `Quick
            test_unlink_drops_dirty_buffers_without_writeback;
          Alcotest.test_case "unmount flushes" `Quick
            test_unmount_flushes_everything;
        ] );
      ( "mmap",
        [
          Alcotest.test_case "mmap flushes and pins eager" `Quick
            test_mmap_flushes_and_pins_eager;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "writers share small pool" `Quick
            test_concurrent_writers_shared_small_pool;
        ]
        @ Testkit.qcheck_cases [ hinfs_model_prop; hinfs_crash_prop ] );
    ]
