(* PMFS integration tests: data path, namespace, persistence across
   remount, crash recovery, and the VFS layer on top. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let root = Layout.root_ino

let read_all fs ~ino ~len =
  let buf = Bytes.create len in
  let n = Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 in
  (Bytes.sub buf 0 n, n)

(* --- basic data path --- *)

let test_create_write_read () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let ino = Pmfs.create_file fs ~dir:root "hello" in
      let payload = Testkit.pattern_bytes ~seed:1 10_000 in
      let n =
        Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:10_000
          ~sync:false
      in
      check_int "bytes written" 10_000 n;
      let data, n = read_all fs ~ino ~len:20_000 in
      check_int "bytes read (clamped to size)" 10_000 n;
      Testkit.check_bytes "round trip" payload data)

let test_unaligned_overwrite () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let ino = Pmfs.create_file fs ~dir:root "f" in
      let base = Bytes.make 9000 'a' in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:base ~src_off:0 ~len:9000 ~sync:false);
      (* Overwrite an unaligned range crossing a block boundary. *)
      let patch = Bytes.make 1000 'b' in
      ignore
        (Pmfs.write fs ~ino ~off:3800 ~src:patch ~src_off:0 ~len:1000
           ~sync:false);
      let expected = Bytes.make 9000 'a' in
      Bytes.fill expected 3800 1000 'b';
      let data, _ = read_all fs ~ino ~len:9000 in
      Testkit.check_bytes "patched" expected data)

let test_sparse_file_holes_read_zero () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let ino = Pmfs.create_file fs ~dir:root "sparse" in
      let tail = Bytes.make 100 'z' in
      (* Write far into the file: everything before is a hole. *)
      ignore
        (Pmfs.write fs ~ino ~off:1_000_000 ~src:tail ~src_off:0 ~len:100
           ~sync:false);
      check_int "size" 1_000_100 (Pmfs.inode_size fs ino);
      let buf = Bytes.make 200 'x' in
      let n = Pmfs.read fs ~ino ~off:500_000 ~len:200 ~into:buf ~into_off:0 in
      check_int "hole read length" 200 n;
      check_bool "hole reads zeros" true
        (Bytes.to_string buf = String.make 200 '\000');
      (* Tail data intact. *)
      let buf2 = Bytes.create 100 in
      let _ = Pmfs.read fs ~ino ~off:1_000_000 ~len:100 ~into:buf2 ~into_off:0 in
      Testkit.check_bytes "tail" tail buf2)

let test_fresh_partial_block_zero_filled () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      (* Pollute a block, free it, then reallocate for a new file: stale
         bytes must not leak. *)
      let a = Pmfs.create_file fs ~dir:root "a" in
      let junk = Bytes.make 4096 'J' in
      ignore (Pmfs.write fs ~ino:a ~off:0 ~src:junk ~src_off:0 ~len:4096 ~sync:false);
      Pmfs.unlink fs ~dir:root "a";
      let b = Pmfs.create_file fs ~dir:root "b" in
      let tiny = Bytes.make 10 'T' in
      ignore (Pmfs.write fs ~ino:b ~off:100 ~src:tiny ~src_off:0 ~len:10 ~sync:false);
      (* size is 110; bytes 0..99 must read as zeros, not 'J'. *)
      let buf = Bytes.create 110 in
      let _ = Pmfs.read fs ~ino:b ~off:0 ~len:110 ~into:buf ~into_off:0 in
      check_bool "prefix zeroed" true
        (Bytes.sub_string buf 0 100 = String.make 100 '\000');
      Alcotest.(check string) "data" (Bytes.to_string tiny)
        (Bytes.sub_string buf 100 10))

let test_large_file_grows_tree () =
  Testkit.run_sim (fun engine ->
      let config =
        { Testkit.small_config with Hinfs_nvmm.Config.nvmm_size = 32 * 1024 * 1024 }
      in
      let _d, fs = Testkit.make_pmfs ~config engine in
      let ino = Pmfs.create_file fs ~dir:root "big" in
      (* 3 MB: needs a height-2 tree (512 blocks per level-1 node). *)
      let chunk = Bytes.make 65536 '\000' in
      for i = 0 to 47 do
        Bytes.fill chunk 0 65536 (Char.chr (Char.code 'A' + (i mod 26)));
        ignore
          (Pmfs.write fs ~ino ~off:(i * 65536) ~src:chunk ~src_off:0 ~len:65536
             ~sync:false)
      done;
      check_int "size" (48 * 65536) (Pmfs.inode_size fs ino);
      (* Spot check several offsets. *)
      List.iter
        (fun i ->
          let buf = Bytes.create 16 in
          let _ =
            Pmfs.read fs ~ino ~off:(i * 65536) ~len:16 ~into:buf ~into_off:0
          in
          Alcotest.(check char)
            "content at chunk" (Char.chr (Char.code 'A' + (i mod 26)))
            (Bytes.get buf 0))
        [ 0; 1; 17; 31; 47 ])

let test_truncate () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let ino = Pmfs.create_file fs ~dir:root "t" in
      let payload = Testkit.pattern_bytes ~seed:2 20_000 in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:20_000 ~sync:false);
      let blocks_before = (Pmfs.stat_of fs ino).Types.blocks in
      Pmfs.truncate fs ~ino ~size:5_000;
      check_int "shrunk size" 5_000 (Pmfs.inode_size fs ino);
      let blocks_after = (Pmfs.stat_of fs ino).Types.blocks in
      check_bool "blocks freed" true (blocks_after < blocks_before);
      let data, n = read_all fs ~ino ~len:20_000 in
      check_int "reads clamp" 5_000 n;
      Testkit.check_bytes "kept prefix" (Bytes.sub payload 0 5_000) data;
      (* Grow back: no stale data may reappear. *)
      Pmfs.truncate fs ~ino ~size:8_192;
      let buf = Bytes.create 3_192 in
      let _ = Pmfs.read fs ~ino ~off:5_000 ~len:3_192 ~into:buf ~into_off:0 in
      ignore buf)

let test_unlink_frees_space () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      (* Prime the root directory's dirent block so it does not count as
         "leaked" space below. *)
      let warmup = Pmfs.create_file fs ~dir:root "warmup" in
      ignore warmup;
      Pmfs.unlink fs ~dir:root "warmup";
      let free0 = Pmfs.free_data_blocks fs in
      let ino = Pmfs.create_file fs ~dir:root "f" in
      let payload = Bytes.make 100_000 'x' in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:100_000 ~sync:false);
      check_bool "space consumed" true (Pmfs.free_data_blocks fs < free0);
      Pmfs.unlink fs ~dir:root "f";
      check_int "space reclaimed" free0 (Pmfs.free_data_blocks fs);
      check_bool "name gone" true (Pmfs.lookup fs ~dir:root "f" = None))

(* --- namespace --- *)

let test_directories () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let sub = Pmfs.mkdir fs ~dir:root "sub" in
      let _a = Pmfs.create_file fs ~dir:sub "a" in
      let _b = Pmfs.create_file fs ~dir:sub "b" in
      let names = List.map fst (Pmfs.readdir fs ~dir:sub) in
      Alcotest.(check (list string)) "listing" [ "a"; "b" ]
        (List.sort compare names);
      (* rmdir refuses non-empty *)
      let refused =
        try
          Pmfs.rmdir fs ~dir:root "sub";
          false
        with Errno.Fs_error (ENOTEMPTY, _) -> true
      in
      check_bool "rmdir non-empty refused" true refused;
      Pmfs.unlink fs ~dir:sub "a";
      Pmfs.unlink fs ~dir:sub "b";
      Pmfs.rmdir fs ~dir:root "sub";
      check_bool "dir gone" true (Pmfs.lookup fs ~dir:root "sub" = None))

let test_many_dirents_span_blocks () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      (* 64 dirents per block; create 200 entries to span multiple dirent
         blocks. *)
      for i = 0 to 199 do
        ignore (Pmfs.create_file fs ~dir:root (Printf.sprintf "file%03d" i))
      done;
      check_int "entries" 200 (List.length (Pmfs.readdir fs ~dir:root));
      (* Delete every other, then re-create: slots are reused. *)
      for i = 0 to 199 do
        if i mod 2 = 0 then Pmfs.unlink fs ~dir:root (Printf.sprintf "file%03d" i)
      done;
      check_int "after deletes" 100 (List.length (Pmfs.readdir fs ~dir:root));
      for i = 0 to 99 do
        ignore (Pmfs.create_file fs ~dir:root (Printf.sprintf "new%03d" i))
      done;
      check_int "after re-create" 200 (List.length (Pmfs.readdir fs ~dir:root));
      check_bool "lookup works" true
        (Pmfs.lookup fs ~dir:root "file001" <> None))

let test_rename () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let ino = Pmfs.create_file fs ~dir:root "old" in
      let payload = Testkit.pattern_bytes ~seed:3 500 in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:500 ~sync:false);
      let sub = Pmfs.mkdir fs ~dir:root "d" in
      Pmfs.rename fs ~src_dir:root ~src:"old" ~dst_dir:sub ~dst:"new";
      check_bool "old gone" true (Pmfs.lookup fs ~dir:root "old" = None);
      Alcotest.(check (option int)) "new present" (Some ino)
        (Pmfs.lookup fs ~dir:sub "new");
      (* Rename over an existing file frees the target. *)
      let victim = Pmfs.create_file fs ~dir:sub "victim" in
      ignore (Pmfs.write fs ~ino:victim ~off:0 ~src:payload ~src_off:0 ~len:500 ~sync:false);
      Pmfs.rename fs ~src_dir:sub ~src:"new" ~dst_dir:sub ~dst:"victim";
      Alcotest.(check (option int)) "replaced" (Some ino)
        (Pmfs.lookup fs ~dir:sub "victim"))

let test_eexist_enoent () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      ignore (Pmfs.create_file fs ~dir:root "x");
      let dup =
        try
          ignore (Pmfs.create_file fs ~dir:root "x");
          false
        with Errno.Fs_error (EEXIST, _) -> true
      in
      check_bool "duplicate rejected" true dup;
      let missing =
        try
          Pmfs.unlink fs ~dir:root "nope";
          false
        with Errno.Fs_error (ENOENT, _) -> true
      in
      check_bool "missing unlink rejected" true missing)

(* --- persistence across remount --- *)

let test_remount_preserves_data () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 () in
      let sub = Pmfs.mkdir fs ~dir:root "dir" in
      let ino = Pmfs.create_file fs ~dir:sub "file" in
      let payload = Testkit.pattern_bytes ~seed:10 50_000 in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:50_000 ~sync:false);
      let free_before = Pmfs.free_data_blocks fs in
      Pmfs.unmount fs;
      (* Remount the same device. *)
      let fs2 = Pmfs.mount d () in
      check_int "no recovery on clean unmount" 0 (Pmfs.recovered_txns fs2);
      let sub2 = Option.get (Pmfs.lookup fs2 ~dir:root "dir") in
      check_int "dir ino stable" sub sub2;
      let ino2 = Option.get (Pmfs.lookup fs2 ~dir:sub2 "file") in
      let buf = Bytes.create 50_000 in
      let n = Pmfs.read fs2 ~ino:ino2 ~off:0 ~len:50_000 ~into:buf ~into_off:0 in
      check_int "size preserved" 50_000 n;
      Testkit.check_bytes "data preserved" payload buf;
      check_int "allocator rebuilt identically" free_before
        (Pmfs.free_data_blocks fs2))

let test_crash_recovery_consistent () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 () in
      let ino = Pmfs.create_file fs ~dir:root "stable" in
      let payload = Testkit.pattern_bytes ~seed:11 8192 in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:8192 ~sync:false);
      (* Crash without unmounting: committed transactions must survive, the
         file system must mount and pass basic consistency checks. *)
      Device.crash d;
      let fs2 = Pmfs.mount d () in
      let ino2 = Option.get (Pmfs.lookup fs2 ~dir:root "stable") in
      let buf = Bytes.create 8192 in
      let n = Pmfs.read fs2 ~ino:ino2 ~off:0 ~len:8192 ~into:buf ~into_off:0 in
      check_int "committed write survived crash" 8192 n;
      Testkit.check_bytes "data intact" payload buf)

(* Property: crash at a random point during a random operation sequence
   always yields a mountable, readable file system where every file's
   content is one of the states the crashed operation allows. We check a
   weaker but meaningful invariant: mount succeeds, every directory entry
   resolves to a live inode, and reading every file succeeds. *)
let crash_anywhere_prop =
  QCheck.Test.make ~name:"pmfs mounts consistently after crash anywhere"
    ~count:25
    QCheck.(pair small_nat (int_bound 5_000_000))
    (fun (seed, crash_at) ->
      Testkit.run_sim (fun engine ->
          let d = Testkit.make_device engine in
          let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 () in
          let rng = Rng.create ~seed:(Int64.of_int (seed * 31 + 7)) in
          (* Run random ops in a child process; "crash" by snapshotting the
             persistent medium at a random virtual instant (a real crash
             stops execution, so the child is quiesced from then on and any
             half-finished operation is excused). *)
          let crashed = ref false in
          Proc.spawn (fun () ->
              try
                for i = 0 to 200 do
                  if !crashed then raise Exit;
                  let name = Printf.sprintf "f%d" (Rng.int rng 20) in
                  match Rng.int rng 4 with
                  | 0 -> (
                    try ignore (Pmfs.create_file fs ~dir:root name)
                    with Errno.Fs_error _ -> ())
                  | 1 -> (
                    match Pmfs.lookup fs ~dir:root name with
                    | Some ino ->
                      let len = 1 + Rng.int rng 10_000 in
                      let payload = Testkit.pattern_bytes ~seed:i len in
                      ignore
                        (Pmfs.write fs ~ino ~off:(Rng.int rng 20_000)
                           ~src:payload ~src_off:0 ~len ~sync:false)
                    | None -> ())
                  | 2 -> (
                    try Pmfs.unlink fs ~dir:root name
                    with Errno.Fs_error _ -> ())
                  | _ -> (
                    match Pmfs.lookup fs ~dir:root name with
                    | Some ino -> Pmfs.truncate fs ~ino ~size:(Rng.int rng 5_000)
                    | None -> ())
                done
              with
              | Engine.Stopped | Exit -> ()
              | _ when !crashed -> ());
          Proc.delay (Int64.of_int crash_at);
          let image = Device.snapshot d in
          crashed := true;
          let d2 =
            Device.of_snapshot
              (Device.engine d)
              (Hinfs_stats.Stats.create ())
              (Device.config d) image
          in
          let fs2 = Pmfs.mount d2 () in
          let ok = ref true in
          List.iter
            (fun (_name, ino) ->
              match Pmfs.stat_of fs2 ino with
              | stat ->
                let buf = Bytes.create (min stat.Types.size 50_000) in
                (try
                   ignore
                     (Pmfs.read fs2 ~ino ~off:0 ~len:(Bytes.length buf)
                        ~into:buf ~into_off:0)
                 with _ -> ok := false)
              | exception _ -> ok := false)
            (Pmfs.readdir fs2 ~dir:root);
          !ok))

(* --- VFS layer --- *)

let test_vfs_handle_basics () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      h.Vfs.mkdir "/data";
      let fd = h.Vfs.open_ "/data/log" { Types.creat with Types.read = true } in
      let payload = Testkit.pattern_bytes ~seed:20 5000 in
      check_int "write" 5000 (h.Vfs.write fd payload 5000);
      h.Vfs.seek fd 0;
      let buf = Bytes.create 5000 in
      check_int "read" 5000 (h.Vfs.read fd buf 5000);
      Testkit.check_bytes "vfs round trip" payload buf;
      h.Vfs.fsync fd;
      let st = h.Vfs.fstat fd in
      check_int "size" 5000 st.Types.size;
      h.Vfs.close fd;
      check_bool "exists" true (h.Vfs.exists "/data/log");
      h.Vfs.unlink "/data/log";
      check_bool "gone" false (h.Vfs.exists "/data/log"))

let test_vfs_append_mode () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      let fd =
        h.Vfs.open_ "/log" { Types.creat with Types.append = true }
      in
      let a = Bytes.of_string "hello " and b = Bytes.of_string "world" in
      ignore (h.Vfs.write fd a 6);
      ignore (h.Vfs.write fd b 5);
      h.Vfs.close fd;
      let fd = h.Vfs.open_ "/log" Types.rdonly in
      let buf = Bytes.create 11 in
      ignore (h.Vfs.read fd buf 11);
      Alcotest.(check string) "appended" "hello world" (Bytes.to_string buf))

let test_vfs_errors () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      let enoent =
        try
          ignore (h.Vfs.open_ "/missing" Types.rdonly);
          false
        with Errno.Fs_error (ENOENT, _) -> true
      in
      check_bool "open missing" true enoent;
      let ebadf =
        try
          ignore (h.Vfs.read 999 (Bytes.create 1) 1);
          false
        with Errno.Fs_error (EBADF, _) -> true
      in
      check_bool "bad fd" true ebadf;
      let fd = h.Vfs.open_ "/wr" Types.creat in
      let not_readable =
        try
          ignore (h.Vfs.read fd (Bytes.create 1) 1);
          false
        with Errno.Fs_error (EBADF, _) -> true
      in
      check_bool "write-only fd not readable" true not_readable;
      let excl =
        try
          ignore (h.Vfs.open_ "/wr" { Types.creat with Types.excl = true });
          false
        with Errno.Fs_error (EEXIST, _) -> true
      in
      check_bool "O_EXCL" true excl)

let test_vfs_fsync_byte_accounting () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device ~stats engine in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 () in
      let h = Pmfs.handle fs in
      let fd = h.Vfs.open_ "/f" { Types.creat with Types.read = true } in
      let buf = Bytes.make 1000 'x' in
      ignore (h.Vfs.write fd buf 1000);
      ignore (h.Vfs.write fd buf 1000);
      h.Vfs.fsync fd;
      (* A third write, not covered by any fsync. *)
      ignore (h.Vfs.write fd buf 1000);
      h.Vfs.close fd;
      (* O_SYNC writes count directly. *)
      let fd2 = h.Vfs.open_ "/g" { Types.creat with Types.o_sync = true } in
      ignore (h.Vfs.write fd2 buf 1000);
      h.Vfs.close fd2);
  Alcotest.(check int64) "user bytes" 4000L (Stats.user_bytes_written stats);
  Alcotest.(check int64) "fsync bytes" 3000L (Stats.fsync_bytes stats)

let test_concurrent_writers_different_files () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let h = Pmfs.handle fs in
      let done_count = ref 0 in
      for i = 0 to 7 do
        Proc.spawn (fun () ->
            let path = Printf.sprintf "/file%d" i in
            let fd = h.Vfs.open_ path { Types.creat with Types.read = true } in
            let payload = Testkit.pattern_bytes ~seed:(100 + i) 8192 in
            ignore (h.Vfs.write fd payload 8192);
            h.Vfs.seek fd 0;
            let buf = Bytes.create 8192 in
            ignore (h.Vfs.read fd buf 8192);
            Testkit.check_bytes "concurrent round trip" payload buf;
            h.Vfs.close fd;
            incr done_count)
      done;
      (* run_sim returns when all processes finish *)
      ());
  ()

(* Random operations compared against a model file system (a Map from path
   to contents), via the VFS handle. *)
let vfs_model_prop =
  QCheck.Test.make ~name:"pmfs matches model under random ops" ~count:40
    QCheck.(small_nat)
    (fun seed ->
      Testkit.run_sim (fun engine ->
          let _d, fs = Testkit.make_pmfs engine in
          let h = Pmfs.handle fs in
          let rng = Rng.create ~seed:(Int64.of_int ((seed * 131) + 17)) in
          let model : (string, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
          let paths = Array.init 8 (fun i -> Printf.sprintf "/m%d" i) in
          let ok = ref true in
          for step = 0 to 300 do
            let path = Rng.pick rng paths in
            match Rng.int rng 5 with
            | 0 ->
              (* write whole file *)
              let len = Rng.int rng 12_000 in
              let payload = Testkit.pattern_bytes ~seed:step len in
              let fd =
                h.Hinfs_vfs.Vfs.open_ path
                  { Types.creat with Types.truncate = true }
              in
              ignore (h.Hinfs_vfs.Vfs.write fd payload len);
              h.Hinfs_vfs.Vfs.close fd;
              Hashtbl.replace model path (Bytes.copy payload)
            | 1 -> (
              (* patch a range *)
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some content ->
                let size = Bytes.length content in
                let off = Rng.int rng (size + 1000) in
                let len = 1 + Rng.int rng 3000 in
                let payload = Testkit.pattern_bytes ~seed:(step + 7) len in
                let fd = h.Hinfs_vfs.Vfs.open_ path Types.rdwr in
                ignore (h.Hinfs_vfs.Vfs.pwrite fd ~off payload len);
                h.Hinfs_vfs.Vfs.close fd;
                let new_size = max size (off + len) in
                let updated = Bytes.make new_size '\000' in
                Bytes.blit content 0 updated 0 size;
                Bytes.blit payload 0 updated off len;
                Hashtbl.replace model path updated)
            | 2 -> (
              (* delete *)
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some _ ->
                h.Hinfs_vfs.Vfs.unlink path;
                Hashtbl.remove model path)
            | 3 -> (
              (* truncate *)
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some content ->
                let size = Rng.int rng (Bytes.length content + 2000) in
                h.Hinfs_vfs.Vfs.truncate path size;
                let updated = Bytes.make size '\000' in
                Bytes.blit content 0 updated 0 (min size (Bytes.length content));
                Hashtbl.replace model path updated)
            | _ -> (
              (* verify read *)
              match Hashtbl.find_opt model path with
              | None ->
                if h.Hinfs_vfs.Vfs.exists path then begin
                  ok := false
                end
              | Some content ->
                let fd = h.Hinfs_vfs.Vfs.open_ path Types.rdonly in
                let buf = Bytes.create (Bytes.length content + 100) in
                let n =
                  h.Hinfs_vfs.Vfs.pread fd ~off:0 buf (Bytes.length buf)
                in
                h.Hinfs_vfs.Vfs.close fd;
                if
                  n <> Bytes.length content
                  || not (Bytes.equal (Bytes.sub buf 0 n) content)
                then ok := false)
          done;
          !ok))

let () =
  Alcotest.run "pmfs"
    [
      ( "data-path",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "unaligned overwrite" `Quick
            test_unaligned_overwrite;
          Alcotest.test_case "sparse holes" `Quick
            test_sparse_file_holes_read_zero;
          Alcotest.test_case "fresh partial block zeroed" `Quick
            test_fresh_partial_block_zero_filled;
          Alcotest.test_case "large file grows tree" `Quick
            test_large_file_grows_tree;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "unlink frees space" `Quick
            test_unlink_frees_space;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "directories" `Quick test_directories;
          Alcotest.test_case "dirents span blocks" `Quick
            test_many_dirents_span_blocks;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "eexist/enoent" `Quick test_eexist_enoent;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "remount preserves data" `Quick
            test_remount_preserves_data;
          Alcotest.test_case "crash recovery" `Quick
            test_crash_recovery_consistent;
        ]
        @ Testkit.qcheck_cases [ crash_anywhere_prop ] );
      ( "vfs",
        [
          Alcotest.test_case "handle basics" `Quick test_vfs_handle_basics;
          Alcotest.test_case "append mode" `Quick test_vfs_append_mode;
          Alcotest.test_case "errors" `Quick test_vfs_errors;
          Alcotest.test_case "fsync byte accounting" `Quick
            test_vfs_fsync_byte_accounting;
          Alcotest.test_case "concurrent writers" `Quick
            test_concurrent_writers_different_files;
        ]
        @ Testkit.qcheck_cases [ vfs_model_prop ] );
    ]
