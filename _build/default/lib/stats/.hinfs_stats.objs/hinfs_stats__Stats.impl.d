lib/stats/stats.ml: Array Fmt Int64 List
