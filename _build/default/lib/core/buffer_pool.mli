(** The DRAM write buffer pool (paper §3.2): a fixed population of 4 KB
    DRAM blocks on a free list and a global LRW (Least Recently Written)
    list. Each block carries its Cacheline Bitmaps:

    - [present]: lines holding valid data in DRAM;
    - [dirty]: lines awaiting writeback (subset of [present]);
    - [home_valid]: lines of the NVMM home block known to hold valid data
      (all set when the home pre-existed; completed at first writeback). *)

type block = {
  id : int;
  data : Bytes.t;
  node : int Hinfs_structures.Dlist.node;
  mutable ino : int;
  mutable fblock : int;
  mutable home : int;  (** NVMM home block number *)
  mutable present : Clbitmap.t;
  mutable dirty : Clbitmap.t;
  mutable home_valid : Clbitmap.t;
  mutable last_written : int64;
  mutable write_count : int;  (** writes since binding (for sampled LFU) *)
  mutable pinned : int;  (** foreground use / in-flight writeback *)
  mutable in_use : bool;
}

type t

val create : capacity:int -> block_size:int -> lines_per_block:int -> t
val capacity : t -> int
val free_count : t -> int
val used_count : t -> int
val free_fraction : t -> float
val block : t -> int -> block
val lines_per_block : t -> int

val alloc : t -> ino:int -> fblock:int -> home:int -> now:int64 -> block option
(** Take a free block and bind it; [None] when the pool is exhausted (the
    caller stalls on the writeback daemons). *)

val free : t -> block -> unit
(** @raise Invalid_argument if the block is pinned or not in use. *)

val touch_written : t -> ?policy:Hconfig.replacement -> block -> now:int64 -> unit
(** Record a write: moves the block to the MRW end under LRW. *)

val pick_victim : ?policy:Hconfig.replacement -> t -> block option
(** Victim selection: LRW/FIFO take the list head; sampled LFU evicts the
    least-frequently-written of the first unpinned candidates. *)

val iter_lrw : t -> (block -> unit) -> unit
(** From LRW to MRW; the callback must not free the visited block. *)

val lrw_ids : t -> int list
