(* Buffer Benefit Model and Eager-Persistent Write Checker state (§3.3.2).

   Each data block of a file carries a Lazy/Eager-Persistent state bit plus
   the counters the model needs:
   - N_cw: cacheline writes to the block since the previous sync;
   - the ghost-buffer dirty bitmap, whose population count is N_cf — the
     cacheline flushes the current sync would perform had every write been
     buffered (the ghost buffer keeps index metadata only, no data).

   At each synchronization covering the block, buffering was worthwhile iff

       N_cw * L_dram + N_cf * L_nvmm  <  N_cw * L_nvmm        (Inequality 1)

   If violated the block is set Eager-Persistent: subsequent asynchronous
   writes go straight to NVMM. The state decays back to Lazy when the
   file has not been synced for [eager_decay_ns] (checked lazily at write
   time against the file's last-sync time, as the paper does).

   Accuracy accounting (Fig. 6): a sync's prediction was accurate if the
   block's previous sync reached the same satisfied/violated verdict.

   Simplification (documented in DESIGN.md): the ghost buffer does not
   simulate background evictions, so N_cf is an upper bound — flushes that
   a background thread would have absorbed still count. This biases the
   model slightly toward Eager, which is the conservative direction for
   read consistency and barely matters for sync-heavy blocks. *)

type block_meta = {
  mutable eager : bool;
  mutable ncw : int;
  mutable ghost_dirty : Clbitmap.t;
  mutable prev_satisfied : bool option;
}

type file_model = {
  metas : (int, block_meta) Hashtbl.t; (* fblock -> meta *)
  mutable last_sync : int64;
  mutable ever_synced : bool;
  mutable default_eager : bool;
      (* the file's most recent majority verdict, applied to blocks created
         after that sync. The paper initialises new blocks Lazy "before the
         arrival of their first synchronization operations" and thereafter
         decides "using the most recent synchronization information"; for
         append-dominated files (varmail, logs) every write targets a brand
         new block, so without this inheritance the checker could never
         route them direct. *)
  mutable mmap_pinned : bool; (* mmapped files stay Eager (§4.2) *)
}

let create_file_model () =
  {
    metas = Hashtbl.create 16;
    last_sync = 0L;
    ever_synced = false;
    default_eager = false;
    mmap_pinned = false;
  }

let meta_of file fblock =
  match Hashtbl.find_opt file.metas fblock with
  | Some meta -> meta
  | None ->
    (* New blocks start Lazy-Persistent before the file's first sync
       (§3.3.2) and inherit the file's latest verdict afterwards. *)
    let meta =
      {
        eager = file.ever_synced && file.default_eager;
        ncw = 0;
        ghost_dirty = Clbitmap.empty;
        prev_satisfied = None;
      }
    in
    Hashtbl.replace file.metas fblock meta;
    meta

(* Record a (real or would-be) buffered write for the ghost buffer. *)
let record_write file fblock ~lines =
  let meta = meta_of file fblock in
  meta.ncw <- meta.ncw + Clbitmap.count lines;
  meta.ghost_dirty <- Clbitmap.union meta.ghost_dirty lines

(* The checker's verdict for an asynchronous write to [fblock] (case 2).
   Synchronous writes (case 1) are decided by the caller from the open
   flags / mount options. *)
let is_eager file fblock ~now ~eager_decay_ns =
  if file.mmap_pinned then true
  else begin
    let decayed =
      file.ever_synced
      && Int64.compare (Int64.sub now file.last_sync) eager_decay_ns > 0
    in
    match Hashtbl.find_opt file.metas fblock with
    | None ->
      (* Unwritten-since-tracking block: the file's latest verdict,
         subject to the same decay. *)
      file.ever_synced && file.default_eager && not decayed
    | Some meta ->
      if not meta.eager then false
      else if decayed then begin
        (* Decay: no sync on this file for a while. *)
        meta.eager <- false;
        false
      end
      else meta.eager
  end

(* Re-evaluate every block covered by the current synchronization
   operation. Returns the number of blocks evaluated. *)
let on_sync file ~now ~l_dram ~l_nvmm ~stats =
  let evaluated = ref 0 in
  let violated = ref 0 in
  Hashtbl.iter
    (fun _fblock meta ->
      if meta.ncw > 0 then begin
        incr evaluated;
        let ncw = meta.ncw in
        let ncf = Clbitmap.count meta.ghost_dirty in
        let satisfied = (ncw * l_dram) + (ncf * l_nvmm) < ncw * l_nvmm in
        if not satisfied then incr violated;
        (match meta.prev_satisfied with
        | Some prev ->
          Hinfs_stats.Stats.bbm_prediction stats ~correct:(prev = satisfied)
        | None -> ());
        meta.prev_satisfied <- Some satisfied;
        meta.eager <- not satisfied;
        meta.ncw <- 0;
        meta.ghost_dirty <- Clbitmap.empty
      end)
    file.metas;
  if !evaluated > 0 then file.default_eager <- 2 * !violated > !evaluated;
  file.last_sync <- now;
  file.ever_synced <- true;
  !evaluated

let pin_mmap file = file.mmap_pinned <- true
let unpin_mmap file = file.mmap_pinned <- false
