(** HiNFS — a high performance file system for non-volatile main memory
    (Ou, Shu, Lu; EuroSys 2016), over a simulated NVMM device.

    {!Fs} is the file system itself; the submodules expose the building
    blocks for tests, benchmarks and extensions. *)

module Fs = Fs
module Hconfig = Hconfig
module Clbitmap = Clbitmap
module Buffer_pool = Buffer_pool
module Benefit = Benefit
