lib/core/hconfig.ml:
