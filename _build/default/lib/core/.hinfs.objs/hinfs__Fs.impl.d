lib/core/fs.ml: Benefit Buffer_pool Bytes Clbitmap Fun Hashtbl Hconfig Hinfs_journal Hinfs_nvmm Hinfs_pmfs Hinfs_sim Hinfs_stats Hinfs_structures Hinfs_vfs Int64 List Printf
