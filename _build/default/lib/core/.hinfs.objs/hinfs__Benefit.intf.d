lib/core/benefit.mli: Clbitmap Hinfs_stats
