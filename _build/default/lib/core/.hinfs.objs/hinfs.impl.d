lib/core/hinfs.ml: Benefit Buffer_pool Clbitmap Fs Hconfig
