lib/core/buffer_pool.ml: Array Bytes Clbitmap Hconfig Hinfs_structures List Queue
