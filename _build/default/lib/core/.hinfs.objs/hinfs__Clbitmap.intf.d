lib/core/clbitmap.mli: Format
