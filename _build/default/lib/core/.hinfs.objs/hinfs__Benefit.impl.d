lib/core/benefit.ml: Clbitmap Hashtbl Hinfs_stats Int64
