lib/core/fs.mli: Buffer_pool Bytes Hconfig Hinfs_nvmm Hinfs_pmfs Hinfs_stats Hinfs_vfs
