lib/core/clbitmap.ml: Fmt Int64
