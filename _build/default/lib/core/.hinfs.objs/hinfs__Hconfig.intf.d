lib/core/hconfig.mli:
