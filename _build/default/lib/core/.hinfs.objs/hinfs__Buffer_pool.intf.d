lib/core/buffer_pool.mli: Bytes Clbitmap Hconfig Hinfs_structures
