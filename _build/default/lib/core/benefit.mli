(** Buffer Benefit Model and Eager-Persistent Write Checker state (§3.3.2).

    Per data block, tracks N_cw (cacheline writes since the previous sync)
    and a ghost-buffer dirty bitmap whose population count is N_cf (the
    flushes a sync would perform had every write been buffered). At each
    sync, buffering was worthwhile iff

    {v N_cw * L_dram + N_cf * L_nvmm < N_cw * L_nvmm v}

    Blocks violating the inequality turn Eager-Persistent; the state decays
    back to Lazy after [eager_decay_ns] without a sync on the file. *)

type block_meta
type file_model

val create_file_model : unit -> file_model
val meta_of : file_model -> int -> block_meta

val record_write : file_model -> int -> lines:Clbitmap.t -> unit
(** Ghost-buffer accounting for a write covering [lines] of the block. *)

val is_eager : file_model -> int -> now:int64 -> eager_decay_ns:int64 -> bool
(** The checker's verdict for an asynchronous write to the block (case 2);
    applies decay against the file's last sync time. *)

val on_sync :
  file_model ->
  now:int64 ->
  l_dram:int ->
  l_nvmm:int ->
  stats:Hinfs_stats.Stats.t ->
  int
(** Re-evaluate every block covered by this synchronization; updates block
    states and the Fig.-6 accuracy statistics. Returns the number of blocks
    evaluated. *)

val pin_mmap : file_model -> unit
(** Keep all blocks Eager-Persistent while the file is mmapped (§4.2). *)

val unpin_mmap : file_model -> unit
