(* Cacheline Bitmap (paper §3.2.1, Fig. 4): one bit per cacheline of a
   4 KB buffer block, packed into an int64 (64 lines x 64 B = 4 KB).

   HiNFS keeps two of these per DRAM buffer block:
   - [present]: cachelines holding valid data in DRAM;
   - [dirty]:   cachelines that must be written back (dirty ⊆ present).

   The CLFW scheme fetches and flushes at this granularity, and the read
   path merges DRAM and NVMM data run-by-run to minimise memcpy calls. *)

type t = int64

let empty : t = 0L
let full_mask lines =
  if lines <= 0 then 0L
  else if lines >= 64 then -1L
  else Int64.sub (Int64.shift_left 1L lines) 1L

let mem t line = Int64.logand (Int64.shift_right_logical t line) 1L = 1L

let add t line = Int64.logor t (Int64.shift_left 1L line)

let remove t line =
  Int64.logand t (Int64.lognot (Int64.shift_left 1L line))

(* Bits [first, last] inclusive. *)
let range ~first ~last =
  if last < first then 0L
  else begin
    let count = last - first + 1 in
    Int64.shift_left (full_mask count) first
  end

let add_range t ~first ~last = Int64.logor t (range ~first ~last)
let remove_range t ~first ~last = Int64.logand t (Int64.lognot (range ~first ~last))

let union = Int64.logor
let inter = Int64.logand
let diff a b = Int64.logand a (Int64.lognot b)
let is_empty t = Int64.equal t 0L
let equal = Int64.equal

let count t =
  (* popcount *)
  let rec loop v acc =
    if Int64.equal v 0L then acc
    else loop (Int64.logand v (Int64.sub v 1L)) (acc + 1)
  in
  loop t 0

(* Cachelines covered by byte range [off, off+len) of a block. *)
let of_byte_range ~cacheline_size ~off ~len =
  if len <= 0 then 0L
  else begin
    let first = off / cacheline_size in
    let last = (off + len - 1) / cacheline_size in
    range ~first ~last
  end

(* Cachelines only partially covered at the boundaries of the byte range —
   the lines CLFW must fetch before an unaligned write. *)
let boundary_partials ~cacheline_size ~off ~len =
  if len <= 0 then 0L
  else begin
    let first = off / cacheline_size in
    let last = (off + len - 1) / cacheline_size in
    let head =
      if off mod cacheline_size <> 0 then Int64.shift_left 1L first else 0L
    in
    let tail =
      if (off + len) mod cacheline_size <> 0 then Int64.shift_left 1L last
      else 0L
    in
    Int64.logor head tail
  end

(* Iterate maximal runs within lines [0, nlines): calls
   [f ~first ~count ~set] for each run of equal membership. *)
let iter_runs t ~nlines f =
  let rec loop start =
    if start < nlines then begin
      let in_set = mem t start in
      let rec extend i =
        if i < nlines && mem t i = in_set then extend (i + 1) else i
      in
      let stop = extend (start + 1) in
      f ~first:start ~count:(stop - start) ~set:in_set;
      loop stop
    end
  in
  loop 0

(* Iterate only the set runs. *)
let iter_set_runs t ~nlines f =
  iter_runs t ~nlines (fun ~first ~count ~set ->
      if set then f ~first ~count)

let to_list t ~nlines =
  let acc = ref [] in
  for i = nlines - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let pp ~nlines ppf t =
  for i = 0 to nlines - 1 do
    Fmt.pf ppf "%c" (if mem t i then '1' else '0')
  done
