(** Cacheline Bitmap (paper §3.2.1): one bit per cacheline of a buffer
    block, packed into an [int64] (64 lines x 64 B = 4 KB). *)

type t = int64

val empty : t

val full_mask : int -> t
(** [full_mask n] has the low [n] bits set (clamped to 64). *)

val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t

val range : first:int -> last:int -> t
(** Bits [first..last] inclusive; empty if [last < first]. *)

val add_range : t -> first:int -> last:int -> t
val remove_range : t -> first:int -> last:int -> t
val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the bits of [a] not in [b]. *)

val is_empty : t -> bool
val equal : t -> t -> bool

val count : t -> int
(** Population count. *)

val of_byte_range : cacheline_size:int -> off:int -> len:int -> t
(** Cachelines covered by the byte range of a block. *)

val boundary_partials : cacheline_size:int -> off:int -> len:int -> t
(** Cachelines only partially covered at the range's boundaries — the
    lines CLFW must fetch before an unaligned write. *)

val iter_runs : t -> nlines:int -> (first:int -> count:int -> set:bool -> unit) -> unit
(** Visit maximal runs of equal membership within [0, nlines). *)

val iter_set_runs : t -> nlines:int -> (first:int -> count:int -> unit) -> unit
val to_list : t -> nlines:int -> int list
val pp : nlines:int -> Format.formatter -> t -> unit
