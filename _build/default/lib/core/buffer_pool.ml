(* The DRAM write buffer pool (paper §3.2).

   A fixed population of 4 KB DRAM blocks. Blocks in use are linked on the
   global LRW (Least Recently Written) list — front = least recently
   written, back = MRW — which the background writeback threads consume
   from the front. Free blocks sit on a free list.

   Each block carries its Cacheline Bitmaps:
   - [present]: lines with valid data in DRAM,
   - [dirty]:   lines awaiting writeback (dirty ⊆ present),
   - [home_valid]: lines of the NVMM home block that hold valid data (all
     set when the home block pre-existed; grows as lines are flushed). A
     block may only be freed once home_valid covers every line, so NVMM
     reads after eviction never see stale medium bytes. *)

module Dlist = Hinfs_structures.Dlist

type block = {
  id : int;
  data : Bytes.t;
  node : int Dlist.node; (* membership in the LRW list (value = id) *)
  mutable ino : int;
  mutable fblock : int;
  mutable home : int; (* NVMM home block number *)
  mutable present : Clbitmap.t;
  mutable dirty : Clbitmap.t;
  mutable home_valid : Clbitmap.t;
  mutable last_written : int64;
  mutable write_count : int; (* writes since binding (sampled-LFU policy) *)
  mutable pinned : int; (* foreground use / in-flight writeback *)
  mutable in_use : bool;
}

type t = {
  blocks : block array;
  block_size : int;
  lines_per_block : int;
  free : int Queue.t;
  lrw : int Dlist.t;
  mutable free_count : int;
}

let create ~capacity ~block_size ~lines_per_block =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: empty pool";
  let blocks =
    Array.init capacity (fun id ->
        {
          id;
          data = Bytes.create block_size;
          node = Dlist.make_node id;
          ino = 0;
          fblock = 0;
          home = 0;
          present = Clbitmap.empty;
          dirty = Clbitmap.empty;
          home_valid = Clbitmap.empty;
          last_written = 0L;
          write_count = 0;
          pinned = 0;
          in_use = false;
        })
  in
  let free = Queue.create () in
  Array.iter (fun b -> Queue.add b.id free) blocks;
  {
    blocks;
    block_size;
    lines_per_block;
    free;
    lrw = Dlist.create ();
    free_count = capacity;
  }

let capacity t = Array.length t.blocks
let free_count t = t.free_count
let used_count t = capacity t - t.free_count
let block t id = t.blocks.(id)
let lines_per_block t = t.lines_per_block

let free_fraction t = float_of_int t.free_count /. float_of_int (capacity t)

(* Take a free block and bind it to (ino, fblock, home). *)
let alloc t ~ino ~fblock ~home ~now =
  match Queue.take_opt t.free with
  | None -> None
  | Some id ->
    t.free_count <- t.free_count - 1;
    let b = t.blocks.(id) in
    assert (not b.in_use);
    b.ino <- ino;
    b.fblock <- fblock;
    b.home <- home;
    b.present <- Clbitmap.empty;
    b.dirty <- Clbitmap.empty;
    b.home_valid <- Clbitmap.empty;
    b.last_written <- now;
    b.write_count <- 0;
    b.pinned <- 0;
    b.in_use <- true;
    Dlist.push_back t.lrw b.node;
    Some b

let free t b =
  if not b.in_use then invalid_arg "Buffer_pool.free: block not in use";
  if b.pinned > 0 then invalid_arg "Buffer_pool.free: block pinned";
  b.in_use <- false;
  if Dlist.is_linked b.node then Dlist.remove t.lrw b.node;
  Queue.add b.id t.free;
  t.free_count <- t.free_count + 1

(* Record a write. Under LRW the block moves to the MRW end; under FIFO
   (ablation) recency never changes the order; under sampled LFU we only
   bump the write counter. *)
let touch_written t ?(policy = Hconfig.Lrw) b ~now =
  b.last_written <- now;
  b.write_count <- b.write_count + 1;
  match policy with
  | Hconfig.Lrw -> Dlist.move_to_back t.lrw b.node
  | Hconfig.Fifo | Hconfig.Lfu -> ()

(* How many LRW-end candidates the sampled-LFU policy inspects. *)
let lfu_sample = 32

(* Victim selection. LRW/FIFO take the head of the list; sampled LFU scans
   the first [lfu_sample] unpinned candidates and evicts the least
   frequently written (Redis-style approximation of LFU, which the paper
   names as a candidate "sophisticated" policy). *)
let pick_victim ?(policy = Hconfig.Lrw) t =
  match policy with
  | Hconfig.Lrw | Hconfig.Fifo ->
    let found = ref None in
    (try
       Dlist.iter t.lrw (fun id ->
           let b = t.blocks.(id) in
           if b.pinned = 0 then begin
             found := Some b;
             raise Exit
           end)
     with Exit -> ());
    !found
  | Hconfig.Lfu ->
    let best = ref None in
    let seen = ref 0 in
    (try
       Dlist.iter t.lrw (fun id ->
           let b = t.blocks.(id) in
           if b.pinned = 0 then begin
             incr seen;
             (match !best with
             | Some current when current.write_count <= b.write_count -> ()
             | _ -> best := Some b);
             if !seen >= lfu_sample then raise Exit
           end)
     with Exit -> ());
    !best

(* Iterate blocks from LRW to MRW. [f] may pin/flush but must not free the
   block it is visiting during iteration (collect ids first if freeing). *)
let iter_lrw t f = Dlist.iter t.lrw (fun id -> f t.blocks.(id))

let lrw_ids t =
  let acc = ref [] in
  Dlist.iter t.lrw (fun id -> acc := id :: !acc);
  List.rev !acc
