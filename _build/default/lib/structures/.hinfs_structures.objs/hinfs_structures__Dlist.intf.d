lib/structures/dlist.mli:
