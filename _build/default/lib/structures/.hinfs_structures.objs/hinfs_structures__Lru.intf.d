lib/structures/lru.mli:
