lib/structures/lru.ml: Dlist Hashtbl
