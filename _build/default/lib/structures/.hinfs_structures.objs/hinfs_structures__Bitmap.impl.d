lib/structures/bitmap.ml: Bytes Char Fmt
