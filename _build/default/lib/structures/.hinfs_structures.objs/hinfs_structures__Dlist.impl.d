lib/structures/dlist.ml: List Option
