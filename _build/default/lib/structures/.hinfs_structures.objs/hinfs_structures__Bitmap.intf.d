lib/structures/bitmap.mli: Format
