lib/structures/btree.mli:
