lib/structures/btree.ml: Array Fmt List Option
