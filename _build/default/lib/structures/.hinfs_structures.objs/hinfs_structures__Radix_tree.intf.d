lib/structures/radix_tree.mli:
