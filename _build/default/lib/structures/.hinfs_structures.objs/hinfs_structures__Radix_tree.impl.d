lib/structures/radix_tree.ml: Array List Option
