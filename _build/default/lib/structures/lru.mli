(** Generic LRU recency tracker (hashtable + recency list).

    Tracks recency only; the caller decides when and what to evict. *)

type ('k, 'v) t

val create : ?initial_size:int -> unit -> ('k, 'v) t
val length : ('k, 'v) t -> int
val mem : ('k, 'v) t -> 'k -> bool
val find : ('k, 'v) t -> 'k -> 'v option

val touch : ('k, 'v) t -> 'k -> bool
(** Mark the key most-recently used. Returns [false] if absent. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert as most-recently used (replacing any previous binding). *)

val remove : ('k, 'v) t -> 'k -> bool

val peek_lru : ('k, 'v) t -> ('k * 'v) option
(** Least-recently-used entry, without removing it. *)

val pop_lru : ('k, 'v) t -> ('k * 'v) option

val find_lru_matching : ('k, 'v) t -> ('k -> 'v -> bool) -> ('k * 'v) option
(** Least-recent entry satisfying the predicate. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** From least to most recently used. *)

val clear : ('k, 'v) t -> unit
