(* Intrusive doubly-linked list with O(1) removal given the node.

   This is the LRW (Least Recently Written) list of the HiNFS buffer pool:
   buffer blocks hold their own node and are moved to the MRW end on every
   write (paper §3.2). *)

type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : 'a t option;
}

and 'a t = {
  mutable head : 'a node option; (* least recently used end *)
  mutable tail : 'a node option; (* most recently used end *)
  mutable size : int;
}

let create () = { head = None; tail = None; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let make_node value = { value; prev = None; next = None; owner = None }

let value node = node.value
let is_linked node = node.owner <> None

let check_unlinked node =
  if node.owner <> None then invalid_arg "Dlist: node already linked"

let check_linked t node =
  match node.owner with
  | Some owner when owner == t -> ()
  | _ -> invalid_arg "Dlist: node not linked to this list"

let push_back t node =
  check_unlinked node;
  node.owner <- Some t;
  node.prev <- t.tail;
  node.next <- None;
  (match t.tail with
  | Some tail -> tail.next <- Some node
  | None -> t.head <- Some node);
  t.tail <- Some node;
  t.size <- t.size + 1

let push_front t node =
  check_unlinked node;
  node.owner <- Some t;
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
  | Some head -> head.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node;
  t.size <- t.size + 1

let remove t node =
  check_linked t node;
  (match node.prev with
  | Some prev -> prev.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some next -> next.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None;
  node.owner <- None;
  t.size <- t.size - 1

let move_to_back t node =
  remove t node;
  push_back t node

let move_to_front t node =
  remove t node;
  push_front t node

let peek_front t = Option.map (fun n -> n.value) t.head
let peek_back t = Option.map (fun n -> n.value) t.tail

let pop_front t =
  match t.head with
  | None -> None
  | Some node ->
    remove t node;
    Some node.value

let pop_back t =
  match t.tail with
  | None -> None
  | Some node ->
    remove t node;
    Some node.value

let iter t f =
  let rec loop = function
    | None -> ()
    | Some node ->
      (* Capture next before calling f, so f may remove the node. *)
      let next = node.next in
      f node.value;
      loop next
  in
  loop t.head

let iter_nodes t f =
  let rec loop = function
    | None -> ()
    | Some node ->
      let next = node.next in
      f node;
      loop next
  in
  loop t.head

let to_list t =
  let acc = ref [] in
  iter t (fun v -> acc := v :: !acc);
  List.rev !acc
