(* Generic LRU tracker: hashtable + intrusive recency list.

   The page cache uses one of these for global page reclaim. Unlike a cache
   that owns its values, this structure only tracks recency: the caller
   decides when to evict (e.g. skipping pages that are dirty or pinned). *)

type ('k, 'v) t = {
  table : ('k, ('k * 'v) Dlist.node) Hashtbl.t;
  order : ('k * 'v) Dlist.t; (* front = least recent, back = most recent *)
}

let create ?(initial_size = 64) () =
  { table = Hashtbl.create initial_size; order = Dlist.create () }

let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node -> Some (snd (Dlist.value node))

let touch t key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some node ->
    Dlist.move_to_back t.order node;
    true

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some node ->
    Dlist.remove t.order node;
    Hashtbl.remove t.table key
  | None -> ());
  let node = Dlist.make_node (key, value) in
  Dlist.push_back t.order node;
  Hashtbl.replace t.table key node

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some node ->
    Dlist.remove t.order node;
    Hashtbl.remove t.table key;
    true

let peek_lru t = Dlist.peek_front t.order

let pop_lru t =
  match Dlist.pop_front t.order with
  | None -> None
  | Some (key, value) ->
    Hashtbl.remove t.table key;
    Some (key, value)

(* Least-recent entry satisfying [f], if any; O(n) worst case but the
   caller (page reclaim) normally finds a victim near the front. *)
let find_lru_matching t f =
  let result = ref None in
  (try
     Dlist.iter t.order (fun (k, v) ->
         if f k v then begin
           result := Some (k, v);
           raise Exit
         end)
   with Exit -> ());
  !result

let iter t f = Dlist.iter t.order (fun (k, v) -> f k v)

let clear t =
  Hashtbl.reset t.table;
  let rec drain () =
    match Dlist.pop_front t.order with None -> () | Some _ -> drain ()
  in
  drain ()
