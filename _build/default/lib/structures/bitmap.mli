(** Dense bitmap backed by [Bytes]. *)

type t

val create : int -> t
(** All bits initially clear. *)

val length : t -> int
val count_set : t -> int
val count_clear : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit
val clear_all : t -> unit

val find_first_clear : ?from:int -> t -> int option
val find_first_set : ?from:int -> t -> int option

val find_clear_run : ?from:int -> t -> count:int -> int option
(** Start index of the first run of [count] consecutive clear bits. *)

val iter_set : t -> (int -> unit) -> unit
val fold_set : t -> 'a -> ('a -> int -> 'a) -> 'a
val copy : t -> t
val pp : Format.formatter -> t -> unit
