(* Dense bitmaps backed by [Bytes].

   Used for the on-NVMM block allocator bitmaps and for bulk dirty-tracking
   structures. Bit [i] lives in byte [i/8], bit position [i mod 8]. *)

type t = {
  bits : Bytes.t;
  length : int;
  mutable set_count : int;
}

let create length =
  if length < 0 then invalid_arg "Bitmap.create: negative length";
  { bits = Bytes.make ((length + 7) / 8) '\000'; length; set_count = 0 }

let length t = t.length
let count_set t = t.set_count
let count_clear t = t.length - t.set_count

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitmap: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte lor mask));
    t.set_count <- t.set_count + 1
  end

let clear t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask <> 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot mask));
    t.set_count <- t.set_count - 1
  end

let assign t i value = if value then set t i else clear t i

let clear_all t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.set_count <- 0

(* First clear bit at or after [from], scanning whole bytes when possible. *)
let find_first_clear ?(from = 0) t =
  if from < 0 then invalid_arg "Bitmap.find_first_clear: negative start";
  let rec scan i =
    if i >= t.length then None
    else if i land 7 = 0 && i + 8 <= t.length then
      if Bytes.get t.bits (i lsr 3) = '\255' then scan (i + 8)
      else scan_bits i
    else scan_bits i
  and scan_bits i =
    if i >= t.length then None
    else if not (get t i) then Some i
    else scan_bits (i + 1)
  in
  scan from

let find_first_set ?(from = 0) t =
  if from < 0 then invalid_arg "Bitmap.find_first_set: negative start";
  let rec scan i =
    if i >= t.length then None
    else if i land 7 = 0 && i + 8 <= t.length then
      if Bytes.get t.bits (i lsr 3) = '\000' then scan (i + 8)
      else scan_bits i
    else scan_bits i
  and scan_bits i =
    if i >= t.length then None
    else if get t i then Some i
    else scan_bits (i + 1)
  in
  scan from

(* Find [count] consecutive clear bits; returns the start index. *)
let find_clear_run ?(from = 0) t ~count =
  if count <= 0 then invalid_arg "Bitmap.find_clear_run: count must be > 0";
  let rec outer i =
    match find_first_clear ~from:i t with
    | None -> None
    | Some start ->
      let rec extend j =
        if j - start = count then Some start
        else if j >= t.length then None
        else if get t j then outer (j + 1)
        else extend (j + 1)
      in
      extend start
  in
  outer from

let iter_set t f =
  for i = 0 to t.length - 1 do
    if get t i then f i
  done

let fold_set t init f =
  let acc = ref init in
  iter_set t (fun i -> acc := f !acc i);
  !acc

let copy t =
  { bits = Bytes.copy t.bits; length = t.length; set_count = t.set_count }

let pp ppf t =
  Fmt.pf ppf "@[<h>";
  for i = 0 to t.length - 1 do
    Fmt.pf ppf "%c" (if get t i then '1' else '0')
  done;
  Fmt.pf ppf "@]"
