(** Linux-style radix tree keyed by non-negative integers.

    Used by the page cache to index an inode's cached pages by page number,
    mirroring the kernel's address_space radix tree. *)

type 'a t

val create : unit -> 'a t
val cardinal : 'a t -> int
val is_empty : 'a t -> bool

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val insert : 'a t -> int -> 'a -> unit
(** Upsert. @raise Invalid_argument on negative keys. *)

val remove : 'a t -> int -> bool
(** Returns [false] if the key was absent. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Ascending key order. The callback must not modify the tree. *)

val fold : 'a t -> 'b -> ('b -> int -> 'a -> 'b) -> 'b
val to_list : 'a t -> (int * 'a) list
val clear : 'a t -> unit
