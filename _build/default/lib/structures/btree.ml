(* Mutable in-memory B-tree mapping [int] keys to values.

   This is the DRAM Block Index of HiNFS (paper §3.2, Fig. 5): one tree per
   file, keyed by the block-aligned logical file offset, holding the index
   nodes that pair a DRAM buffer block with its NVMM home block. The paper
   picks a B-tree "to quickly perform search operations" over possibly
   sparse offsets; we implement the classic CLRS algorithm with a
   configurable minimum degree.

   Node arrays are exact-sized and rebuilt on structural change. Since every
   B-tree operation is O(node size) per level anyway, this costs nothing
   asymptotically and removes a whole class of off-by-one bugs.

   Invariants (checked by [validate], exercised by property tests):
   - every node except the root has between [degree-1] and [2*degree-1] keys;
   - keys within a node are strictly increasing;
   - all keys in child [i] lie strictly between keys [i-1] and [i];
   - all leaves are at the same depth. *)

type 'a node = {
  mutable keys : int array; (* length n *)
  mutable values : 'a array; (* length n *)
  mutable children : 'a node array; (* length n+1, or [||] for a leaf *)
}

type 'a t = {
  degree : int; (* minimum degree; max keys per node = 2*degree - 1 *)
  mutable root : 'a node;
  mutable cardinal : int;
}

let nkeys node = Array.length node.keys
let is_leaf node = Array.length node.children = 0
let max_keys t = (2 * t.degree) - 1

let empty_node () = { keys = [||]; values = [||]; children = [||] }

let create ?(degree = 16) () =
  if degree < 2 then invalid_arg "Btree.create: degree must be >= 2";
  { degree; root = empty_node (); cardinal = 0 }

let cardinal t = t.cardinal
let is_empty t = t.cardinal = 0

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j ->
      if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

(* Index of the first key >= key within the node, by binary search. *)
let lower_bound node key =
  let lo = ref 0 and hi = ref (nkeys node) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if node.keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_in node key =
  let i = lower_bound node key in
  if i < nkeys node && node.keys.(i) = key then Some node.values.(i)
  else if is_leaf node then None
  else find_in node.children.(i) key

let find t key = find_in t.root key
let mem t key = Option.is_some (find t key)

(* Split the full child [i] of [parent]; the median key moves up. *)
let split_child t parent i =
  let child = parent.children.(i) in
  assert (nkeys child = max_keys t);
  let d = t.degree in
  let right =
    {
      keys = Array.sub child.keys d (d - 1);
      values = Array.sub child.values d (d - 1);
      children =
        (if is_leaf child then [||] else Array.sub child.children d d);
    }
  in
  let median_key = child.keys.(d - 1) in
  let median_value = child.values.(d - 1) in
  child.keys <- Array.sub child.keys 0 (d - 1);
  child.values <- Array.sub child.values 0 (d - 1);
  if not (is_leaf child) then child.children <- Array.sub child.children 0 d;
  parent.keys <- array_insert parent.keys i median_key;
  parent.values <- array_insert parent.values i median_value;
  parent.children <- array_insert parent.children (i + 1) right

(* Insert into a node guaranteed non-full. *)
let rec insert_nonfull t node key value =
  let i = lower_bound node key in
  if i < nkeys node && node.keys.(i) = key then node.values.(i) <- value
  else if is_leaf node then begin
    node.keys <- array_insert node.keys i key;
    node.values <- array_insert node.values i value;
    t.cardinal <- t.cardinal + 1
  end
  else begin
    let i =
      if nkeys node.children.(i) = max_keys t then begin
        split_child t node i;
        if key > node.keys.(i) then i + 1 else i
      end
      else i
    in
    if i < nkeys node && node.keys.(i) = key then node.values.(i) <- value
    else insert_nonfull t node.children.(i) key value
  end

let insert t key value =
  if nkeys t.root = max_keys t then begin
    let old_root = t.root in
    let new_root =
      { keys = [||]; values = [||]; children = [| old_root |] }
    in
    t.root <- new_root;
    split_child t new_root 0
  end;
  insert_nonfull t t.root key value

(* --- deletion (CLRS) --- *)

let rec max_binding_in node =
  if is_leaf node then
    (node.keys.(nkeys node - 1), node.values.(nkeys node - 1))
  else max_binding_in node.children.(nkeys node)

let rec min_binding_in node =
  if is_leaf node then (node.keys.(0), node.values.(0))
  else min_binding_in node.children.(0)

(* Merge child [i], parent key [i], and child [i+1] into child [i]. *)
let merge_children node i =
  let left = node.children.(i) in
  let right = node.children.(i + 1) in
  left.keys <- Array.concat [ left.keys; [| node.keys.(i) |]; right.keys ];
  left.values <-
    Array.concat [ left.values; [| node.values.(i) |]; right.values ];
  if not (is_leaf left) then
    left.children <- Array.append left.children right.children;
  node.keys <- array_remove node.keys i;
  node.values <- array_remove node.values i;
  node.children <- array_remove node.children (i + 1)

(* Before descending into child [i], ensure it has >= degree keys. Returns
   the (possibly shifted) child index to descend into. *)
let fix_child t node i =
  let d = t.degree in
  let child = node.children.(i) in
  if nkeys child >= d then i
  else begin
    let borrow_left () =
      let left = node.children.(i - 1) in
      let j = i - 1 in
      child.keys <- array_insert child.keys 0 node.keys.(j);
      child.values <- array_insert child.values 0 node.values.(j);
      if not (is_leaf child) then
        child.children <-
          array_insert child.children 0 left.children.(nkeys left);
      let ln = nkeys left in
      node.keys.(j) <- left.keys.(ln - 1);
      node.values.(j) <- left.values.(ln - 1);
      left.keys <- Array.sub left.keys 0 (ln - 1);
      left.values <- Array.sub left.values 0 (ln - 1);
      if not (is_leaf left) then
        left.children <- Array.sub left.children 0 ln;
      i
    in
    let borrow_right () =
      let right = node.children.(i + 1) in
      let cn = nkeys child in
      child.keys <- array_insert child.keys cn node.keys.(i);
      child.values <- array_insert child.values cn node.values.(i);
      if not (is_leaf child) then
        child.children <-
          array_insert child.children (cn + 1) right.children.(0);
      node.keys.(i) <- right.keys.(0);
      node.values.(i) <- right.values.(0);
      right.keys <- array_remove right.keys 0;
      right.values <- array_remove right.values 0;
      if not (is_leaf right) then
        right.children <- array_remove right.children 0;
      i
    in
    if i > 0 && nkeys node.children.(i - 1) >= d then borrow_left ()
    else if i < nkeys node && nkeys node.children.(i + 1) >= d then
      borrow_right ()
    else if i > 0 then begin
      merge_children node (i - 1);
      i - 1
    end
    else begin
      merge_children node i;
      i
    end
  end

let rec remove_from t node key =
  let i = lower_bound node key in
  if i < nkeys node && node.keys.(i) = key then
    if is_leaf node then begin
      node.keys <- array_remove node.keys i;
      node.values <- array_remove node.values i;
      true
    end
    else begin
      let d = t.degree in
      let left = node.children.(i) in
      let right = node.children.(i + 1) in
      if nkeys left >= d then begin
        let pk, pv = max_binding_in left in
        node.keys.(i) <- pk;
        node.values.(i) <- pv;
        ignore (remove_from t left pk);
        true
      end
      else if nkeys right >= d then begin
        let sk, sv = min_binding_in right in
        node.keys.(i) <- sk;
        node.values.(i) <- sv;
        ignore (remove_from t right sk);
        true
      end
      else begin
        merge_children node i;
        ignore (remove_from t node.children.(i) key);
        true
      end
    end
  else if is_leaf node then false
  else begin
    let _shifted = fix_child t node i in
    (* After a merge the key may now sit in [node] itself, and indices may
       have shifted; re-search from scratch. *)
    let j = lower_bound node key in
    if j < nkeys node && node.keys.(j) = key then remove_from t node key
    else remove_from t node.children.(j) key
  end

let remove t key =
  let removed = remove_from t t.root key in
  if removed then begin
    t.cardinal <- t.cardinal - 1;
    if nkeys t.root = 0 && not (is_leaf t.root) then
      t.root <- t.root.children.(0)
  end;
  removed

(* --- iteration --- *)

let rec iter_node node f =
  if is_leaf node then
    for i = 0 to nkeys node - 1 do
      f node.keys.(i) node.values.(i)
    done
  else begin
    for i = 0 to nkeys node - 1 do
      iter_node node.children.(i) f;
      f node.keys.(i) node.values.(i)
    done;
    iter_node node.children.(nkeys node) f
  end

let iter t f = iter_node t.root f

let fold t init f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let rec iter_range_node node ~lo ~hi f =
  let i = lower_bound node lo in
  if is_leaf node then begin
    let j = ref i in
    while !j < nkeys node && node.keys.(!j) <= hi do
      f node.keys.(!j) node.values.(!j);
      incr j
    done
  end
  else begin
    iter_range_node node.children.(i) ~lo ~hi f;
    let j = ref i in
    while !j < nkeys node && node.keys.(!j) <= hi do
      f node.keys.(!j) node.values.(!j);
      iter_range_node node.children.(!j + 1) ~lo ~hi f;
      incr j
    done
  end

let iter_range t ~lo ~hi f = if lo <= hi then iter_range_node t.root ~lo ~hi f

let min_binding t =
  if t.cardinal = 0 then None else Some (min_binding_in t.root)

let max_binding t =
  if t.cardinal = 0 then None else Some (max_binding_in t.root)

let to_list t = List.rev (fold t [] (fun acc k v -> (k, v) :: acc))

let clear t =
  t.root <- empty_node ();
  t.cardinal <- 0

(* --- validation for tests --- *)

let validate t =
  let d = t.degree in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let rec check node ~is_root ~lo ~hi =
    let n = nkeys node in
    if Array.length node.values <> n then err "values length mismatch";
    if (not (is_leaf node)) && Array.length node.children <> n + 1 then
      err "children length mismatch";
    if (not is_root) && n < d - 1 then err "underfull node (%d keys)" n;
    if n > (2 * d) - 1 then err "overfull node (%d keys)" n;
    for i = 0 to n - 2 do
      if node.keys.(i) >= node.keys.(i + 1) then
        err "keys not strictly increasing"
    done;
    for i = 0 to n - 1 do
      (match lo with
      | Some l when node.keys.(i) <= l -> err "key %d below bound" node.keys.(i)
      | _ -> ());
      match hi with
      | Some h when node.keys.(i) >= h -> err "key %d above bound" node.keys.(i)
      | _ -> ()
    done;
    if is_leaf node then 1
    else begin
      let depth = ref (-1) in
      for i = 0 to n do
        let lo = if i = 0 then lo else Some node.keys.(i - 1) in
        let hi = if i = n then hi else Some node.keys.(i) in
        let child_depth = check node.children.(i) ~is_root:false ~lo ~hi in
        if !depth = -1 then depth := child_depth
        else if !depth <> child_depth then err "leaves at different depths"
      done;
      !depth + 1
    end
  in
  ignore (check t.root ~is_root:true ~lo:None ~hi:None);
  let counted = fold t 0 (fun acc _ _ -> acc + 1) in
  if counted <> t.cardinal then
    err "cardinal mismatch: counted %d, recorded %d" counted t.cardinal;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
