(** Intrusive doubly-linked list with O(1) removal given the node.

    The front is the least-recently-used end; the back is the
    most-recently-used end. A node may belong to at most one list at a
    time. *)

type 'a node
type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val make_node : 'a -> 'a node
val value : 'a node -> 'a
val is_linked : 'a node -> bool

val push_back : 'a t -> 'a node -> unit
val push_front : 'a t -> 'a node -> unit

val remove : 'a t -> 'a node -> unit
(** @raise Invalid_argument if the node is not linked to this list. *)

val move_to_back : 'a t -> 'a node -> unit
val move_to_front : 'a t -> 'a node -> unit

val peek_front : 'a t -> 'a option
val peek_back : 'a t -> 'a option
val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option

val iter : 'a t -> ('a -> unit) -> unit
(** Front-to-back iteration; [f] may remove the node it is visiting. *)

val iter_nodes : 'a t -> ('a node -> unit) -> unit
val to_list : 'a t -> 'a list
