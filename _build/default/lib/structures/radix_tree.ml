(* Linux-style radix tree keyed by non-negative integers.

   The page cache indexes each inode's pages with one of these (as Linux's
   address_space does): 6 bits of the key per level, height grows on demand.
   Lookup cost is O(log64 max_key).

   Invariant: when [height = 0] the tree is empty and [root = Empty];
   otherwise [root] is a [Node]. Leaves appear only at level 1 slots. *)

let bits_per_level = 6
let fanout = 1 lsl bits_per_level (* 64 *)

type 'a entry = Empty | Leaf of 'a | Node of 'a entry array

type 'a t = {
  mutable root : 'a entry;
  mutable height : int;
  mutable count : int;
}

let create () = { root = Empty; height = 0; count = 0 }

let cardinal t = t.count
let is_empty t = t.count = 0

(* Max key representable at the given height is fanout^height - 1. *)
let capacity height =
  if height >= 11 then max_int
  else (1 lsl (bits_per_level * height)) - 1

let slot_index key level = (key lsr (bits_per_level * level)) land (fanout - 1)

let check_key key = if key < 0 then invalid_arg "Radix_tree: negative key"

let find t key =
  check_key key;
  if t.height = 0 || key > capacity t.height then None
  else begin
    let rec descend entry level =
      match entry with
      | Empty -> None
      | Leaf v ->
        assert (level = 0);
        Some v
      | Node slots -> descend slots.(slot_index key (level - 1)) (level - 1)
    in
    descend t.root t.height
  end

let mem t key = Option.is_some (find t key)

(* Increase the height until [key] fits. The old root becomes slot 0 of the
   new root, preserving existing keys (their high bits are all 0). *)
let extend t key =
  if t.height = 0 then begin
    t.root <- Node (Array.make fanout Empty);
    t.height <- 1
  end;
  while key > capacity t.height do
    let slots = Array.make fanout Empty in
    slots.(0) <- t.root;
    t.root <- Node slots;
    t.height <- t.height + 1
  done

let insert t key value =
  check_key key;
  extend t key;
  let rec descend entry level =
    match entry, level with
    | Node slots, 1 ->
      let i = slot_index key 0 in
      (match slots.(i) with
      | Leaf _ -> ()
      | Empty -> t.count <- t.count + 1
      | Node _ -> assert false);
      slots.(i) <- Leaf value
    | Node slots, level ->
      let i = slot_index key (level - 1) in
      (match slots.(i) with
      | Empty -> slots.(i) <- Node (Array.make fanout Empty)
      | Node _ -> ()
      | Leaf _ -> assert false);
      descend slots.(i) (level - 1)
    | (Empty | Leaf _), _ -> assert false
  in
  descend t.root t.height

let remove t key =
  check_key key;
  if t.height = 0 || key > capacity t.height then false
  else begin
    let removed = ref false in
    (* Returns true if the subtree became entirely empty. *)
    let rec descend entry level =
      match entry, level with
      | Node slots, 1 ->
        let i = slot_index key 0 in
        (match slots.(i) with
        | Leaf _ ->
          slots.(i) <- Empty;
          removed := true
        | Empty | Node _ -> ());
        Array.for_all (fun e -> e = Empty) slots
      | Node slots, level ->
        let i = slot_index key (level - 1) in
        (match slots.(i) with
        | Empty -> ()
        | Node _ as child ->
          if descend child (level - 1) then slots.(i) <- Empty
        | Leaf _ -> assert false);
        Array.for_all (fun e -> e = Empty) slots
      | (Empty | Leaf _), _ -> assert false
    in
    let root_empty = descend t.root t.height in
    if !removed then begin
      t.count <- t.count - 1;
      if root_empty then begin
        t.root <- Empty;
        t.height <- 0
      end
    end;
    !removed
  end

let iter t f =
  let rec walk entry level base =
    match entry with
    | Empty -> ()
    | Leaf v -> f base v
    | Node slots ->
      for i = 0 to fanout - 1 do
        walk slots.(i) (level - 1)
          (base lor (i lsl (bits_per_level * (level - 1))))
      done
  in
  walk t.root t.height 0

let fold t init f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t [] (fun acc k v -> (k, v) :: acc))

let clear t =
  t.root <- Empty;
  t.height <- 0;
  t.count <- 0
