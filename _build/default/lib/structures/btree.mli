(** Mutable in-memory B-tree mapping [int] keys to values.

    The DRAM Block Index of HiNFS: one tree per file, keyed by block-aligned
    logical offset. Supports upsert, deletion, ordered and range
    iteration. *)

type 'a t

val create : ?degree:int -> unit -> 'a t
(** [degree] is the minimum degree (max keys per node is [2*degree-1]);
    default 16. @raise Invalid_argument if [degree < 2]. *)

val cardinal : 'a t -> int
val is_empty : 'a t -> bool

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val insert : 'a t -> int -> 'a -> unit
(** Upsert: replaces the value if the key is already present. *)

val remove : 'a t -> int -> bool
(** Returns [false] if the key was absent. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** In ascending key order. The callback must not modify the tree. *)

val fold : 'a t -> 'b -> ('b -> int -> 'a -> 'b) -> 'b

val iter_range : 'a t -> lo:int -> hi:int -> (int -> 'a -> unit) -> unit
(** Visit all bindings with [lo <= key <= hi] in ascending order. *)

val min_binding : 'a t -> (int * 'a) option
val max_binding : 'a t -> (int * 'a) option
val to_list : 'a t -> (int * 'a) list
val clear : 'a t -> unit

val validate : 'a t -> (unit, string list) result
(** Check all B-tree invariants; used by the test suite. *)
