(** Counted resource with FIFO waiters.

    Models contended hardware inside the simulation; acquiring blocks the
    calling process until enough units are free. Grants are strictly FIFO, so
    a large request is not starved by a stream of small ones. *)

type t

val create : name:string -> capacity:int -> t

val name : t -> string
val capacity : t -> int

val available : t -> int
(** Units currently free. *)

val queued : t -> int
(** Number of processes currently blocked on this resource. *)

val total_waits : t -> int
(** How many acquisitions had to block since creation. *)

val peak_queue : t -> int
(** Longest waiter queue observed. *)

val try_acquire : t -> int -> bool
(** Non-blocking acquire; fails (returns [false]) if the units are not
    immediately available or other processes are already queued. *)

val acquire : t -> int -> unit
(** Blocking acquire of [amount] units. Must run inside a process.
    @raise Invalid_argument if [amount] exceeds the capacity. *)

val release : t -> int -> unit

val with_resource : t -> int -> (unit -> 'a) -> 'a
(** [with_resource t n f] brackets [f] with [acquire]/[release]. *)
