(** Condition variable for simulation processes.

    No mutex is needed: the simulation is cooperatively scheduled, so a
    process owns the world between suspension points. *)

type t

type outcome = Signaled | Timed_out

val create : Engine.t -> t

val waiting : t -> int
(** Number of live (not yet woken) waiters. *)

val wait : t -> unit
(** Block until {!signal} or {!broadcast}. *)

val wait_timeout : t -> timeout:int64 -> outcome
(** Block until signaled or until [timeout] virtual ns elapse, whichever
    comes first. A non-positive timeout returns [Timed_out] immediately. *)

val signal : t -> bool
(** Wake one waiter. Returns [false] if none was waiting. *)

val broadcast : t -> int
(** Wake all waiters; returns how many were woken. *)
