(* Condition variable for simulation processes.

   The writeback daemons sleep on one of these: they are woken either by a
   low-watermark signal from the allocation path or by their own periodic
   timer, whichever fires first (wait_timeout). *)

type outcome = Signaled | Timed_out

type t = {
  engine : Engine.t;
  waiters : outcome Engine.waker Queue.t;
}

let create engine = { engine; waiters = Queue.create () }

let waiting t =
  Queue.fold
    (fun acc w -> if Engine.is_fired w then acc else acc + 1)
    0 t.waiters

let wait t =
  match Proc.suspend (fun w -> Queue.add w t.waiters) with
  | Signaled -> ()
  | Timed_out -> assert false

let wait_timeout t ~timeout =
  if Int64.compare timeout 0L <= 0 then Timed_out
  else
    Proc.suspend (fun w ->
        Queue.add w t.waiters;
        Engine.after t.engine timeout (fun () ->
            ignore (Engine.wake w Timed_out)))

(* Pop waiters until one is actually woken (skipping those that already
   timed out). Returns true if a live waiter was signaled. *)
let signal t =
  let rec loop () =
    match Queue.take_opt t.waiters with
    | None -> false
    | Some w -> if Engine.wake w Signaled then true else loop ()
  in
  loop ()

let broadcast t =
  let n = ref 0 in
  let rec loop () =
    match Queue.take_opt t.waiters with
    | None -> ()
    | Some w ->
      if Engine.wake w Signaled then incr n;
      loop ()
  in
  loop ();
  !n
