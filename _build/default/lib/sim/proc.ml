(* In-process API: helpers performing the engine's effects. Only valid while
   running inside a process spawned on an {!Engine.t}. *)

let now () = Effect.perform Engine.Now

let delay ns =
  if Int64.compare ns 0L > 0 then Effect.perform (Engine.Delay ns)

let delay_int ns = delay (Int64.of_int ns)

let yield () = Effect.perform (Engine.Delay 0L)

let spawn ?(name = "process") f = Effect.perform (Engine.Spawn (name, f))

let suspend register = Effect.perform (Engine.Suspend register)
