(** Deterministic splitmix64 pseudo-random generator. *)

type t

val create : seed:int64 -> t
val copy : t -> t

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit
val gaussian : t -> mean:float -> stddev:float -> float
