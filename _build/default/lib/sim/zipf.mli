(** Bounded zipfian distribution over [0, n) (YCSB-style).

    [theta = 0] degenerates to uniform; typical skewed workloads use
    [theta] around 0.8–0.99. *)

type t

val create : n:int -> theta:float -> t
(** @raise Invalid_argument unless [n > 0] and [0 <= theta < 1]. *)

val n : t -> int
val theta : t -> float

val sample : t -> Rng.t -> int
(** Draw a rank in [0, n); rank 0 is the most popular. *)
