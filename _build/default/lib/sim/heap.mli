(** Binary min-heap of timestamped events.

    Entries are ordered by [(time, seq)]: events with equal virtual times pop
    in insertion (FIFO) order, which keeps the simulation deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:int64 -> seq:int -> 'a -> unit
(** [add t ~time ~seq payload] inserts an event. The caller is responsible
    for supplying strictly increasing [seq] values. *)

val peek : 'a t -> 'a entry option
(** Earliest entry without removing it. *)

val pop : 'a t -> 'a entry option
(** Remove and return the earliest entry. *)
