(* Reader-writer lock for simulation processes (per-inode i_rwsem).

   Writer-preferring and FIFO among writers: once a writer queues, new
   readers wait behind it, preventing writer starvation. *)

type waiter = Reader of unit Engine.waker | Writer of unit Engine.waker

type t = {
  mutable readers : int;
  mutable writer : bool;
  queue : waiter Queue.t;
}

let create () = { readers = 0; writer = false; queue = Queue.create () }

let readers t = t.readers
let write_locked t = t.writer

(* Admit queued waiters in FIFO order: a writer is admitted only when the
   lock is completely free; consecutive readers at the head are admitted
   together. *)
let drain t =
  let rec loop () =
    match Queue.peek_opt t.queue with
    | None -> ()
    | Some (Reader w) when not t.writer ->
      ignore (Queue.pop t.queue);
      if Engine.wake w () then t.readers <- t.readers + 1;
      loop ()
    | Some (Writer w) when (not t.writer) && t.readers = 0 ->
      ignore (Queue.pop t.queue);
      if Engine.wake w () then t.writer <- true else loop ()
    | Some _ -> ()
  in
  loop ()

let read_lock t =
  if (not t.writer) && Queue.is_empty t.queue then
    t.readers <- t.readers + 1
  else Proc.suspend (fun w -> Queue.add (Reader w) t.queue)

let read_unlock t =
  if t.readers <= 0 then invalid_arg "Rwlock.read_unlock: not read-locked";
  t.readers <- t.readers - 1;
  if t.readers = 0 then drain t

let write_lock t =
  if (not t.writer) && t.readers = 0 && Queue.is_empty t.queue then
    t.writer <- true
  else Proc.suspend (fun w -> Queue.add (Writer w) t.queue)

let write_unlock t =
  if not t.writer then invalid_arg "Rwlock.write_unlock: not write-locked";
  t.writer <- false;
  drain t

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
