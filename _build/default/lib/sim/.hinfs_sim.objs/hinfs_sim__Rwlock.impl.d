lib/sim/rwlock.ml: Engine Fun Proc Queue
