lib/sim/condvar.mli: Engine
