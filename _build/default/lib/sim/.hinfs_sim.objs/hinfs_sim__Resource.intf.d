lib/sim/resource.mli:
