lib/sim/rng.mli:
