lib/sim/proc.ml: Effect Engine Int64
