lib/sim/rwlock.mli:
