lib/sim/zipf.ml: Float Rng
