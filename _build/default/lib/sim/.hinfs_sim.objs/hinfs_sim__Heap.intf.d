lib/sim/heap.mli:
