lib/sim/condvar.ml: Engine Int64 Proc Queue
