lib/sim/resource.ml: Engine Fun Proc Queue
