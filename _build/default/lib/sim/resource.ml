(* Counted resource with FIFO waiters.

   Used to model contended hardware: the NVMM write-bandwidth limiter is a
   resource with N_w slots (paper §5.1), where each in-flight cacheline write
   holds one slot for the duration of the write. *)

type waiter = { amount : int; waker : unit Engine.waker }

type t = {
  name : string;
  capacity : int;
  mutable available : int;
  waiters : waiter Queue.t;
  mutable peak_queue : int;
  mutable total_waits : int;
}

let create ~name ~capacity =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be > 0";
  {
    name;
    capacity;
    available = capacity;
    waiters = Queue.create ();
    peak_queue = 0;
    total_waits = 0;
  }

let name t = t.name
let capacity t = t.capacity
let available t = t.available
let queued t = Queue.length t.waiters
let total_waits t = t.total_waits
let peak_queue t = t.peak_queue

(* Grant queued requests in FIFO order while they fit. Waiters whose waker
   already fired (e.g. a timed-out acquire) are dropped. *)
let drain t =
  let rec loop () =
    match Queue.peek_opt t.waiters with
    | None -> ()
    | Some w when Engine.is_fired w.waker ->
      ignore (Queue.pop t.waiters);
      loop ()
    | Some w when w.amount <= t.available ->
      ignore (Queue.pop t.waiters);
      t.available <- t.available - w.amount;
      ignore (Engine.wake w.waker ());
      loop ()
    | Some _ -> ()
  in
  loop ()

let try_acquire t amount =
  if amount <= 0 || amount > t.capacity then
    invalid_arg "Resource.try_acquire: bad amount";
  if Queue.is_empty t.waiters && t.available >= amount then begin
    t.available <- t.available - amount;
    true
  end
  else false

let acquire t amount =
  if amount <= 0 || amount > t.capacity then
    invalid_arg "Resource.acquire: bad amount";
  if not (try_acquire t amount) then begin
    t.total_waits <- t.total_waits + 1;
    Proc.suspend (fun waker ->
        Queue.add { amount; waker } t.waiters;
        t.peak_queue <- max t.peak_queue (Queue.length t.waiters))
  end

let release t amount =
  if amount <= 0 then invalid_arg "Resource.release: bad amount";
  t.available <- t.available + amount;
  if t.available > t.capacity then
    invalid_arg "Resource.release: released more than acquired";
  drain t

let with_resource t amount f =
  acquire t amount;
  Fun.protect ~finally:(fun () -> release t amount) f
