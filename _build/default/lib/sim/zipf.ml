(* Bounded zipfian sampler (Gray et al., as popularised by YCSB).

   Used by workload generators to produce the skewed access patterns the
   paper relies on ("a large majority of file system workloads show strong
   locality and high I/O skewness", §3.2). *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be > 0";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in [0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; half_pow_theta = Float.pow 0.5 theta }

let n t = t.n
let theta t = t.theta

let sample t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. t.half_pow_theta then 1
  else begin
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let i = int_of_float v in
    if i >= t.n then t.n - 1 else if i < 0 then 0 else i
  end
