(* Deterministic pseudo-random number generator (splitmix64).

   Every workload generator owns its own Rng seeded from the experiment
   configuration, so runs are reproducible bit-for-bit regardless of how
   processes interleave. *)

type t = { mutable state : int64 }

let create ~seed = { state = seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  let open Int64 in
  t.state <- add t.state golden_gamma;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits53 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11)

let float t =
  (* 53 uniform bits scaled into [0, 1). *)
  float_of_int (bits53 t) /. 9007199254740992.0

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be > 0";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used (all far below 2^53). *)
  bits53 t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Marsaglia polar method would need caching; a simple Box-Muller transform
   keeps the generator stateless beyond the seed. *)
let gaussian t ~mean ~stddev =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)
