(** In-process API for simulation processes.

    These helpers perform the {!Engine} effects and are only meaningful when
    called from inside a process running under {!Engine.run}. *)

val now : unit -> int64
(** Current virtual time (ns). *)

val delay : int64 -> unit
(** Sleep for the given number of virtual nanoseconds. [delay 0L] and
    negative delays return immediately without yielding. *)

val delay_int : int -> unit
(** [delay] taking an [int] of nanoseconds. *)

val yield : unit -> unit
(** Give other processes scheduled at the current time a chance to run. *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** Start a child process at the current virtual time. *)

val suspend : ('a Engine.waker -> unit) -> 'a
(** Block the current process. [register] receives a one-shot waker; the
    process resumes with the value passed to {!Engine.wake}. *)
