(** Reader-writer lock for simulation processes.

    Writer-preferring: once a writer queues, later readers wait behind it. *)

type t

val create : unit -> t
val readers : t -> int
val write_locked : t -> bool
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit
val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a
