(* Binary min-heap of timestamped events.

   Keys are (time, seq) pairs; [seq] is a strictly increasing sequence number
   assigned at insertion so that events scheduled for the same virtual time
   fire in FIFO order — this is what makes the whole simulation
   deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt a b =
  match Int64.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && lt t.data.(left) t.data.(!smallest) then smallest := left;
  if right < t.size && lt t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = Array.length t.data in
  if t.size >= capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    (* The dummy element is never observed: every slot below [size] is
       overwritten before being read. *)
    let dummy = t.data.(0) in
    let data = Array.make new_capacity dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let add t ~time ~seq payload =
  let entry = { time; seq; payload } in
  if Array.length t.data = 0 then t.data <- Array.make 16 entry else grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end
