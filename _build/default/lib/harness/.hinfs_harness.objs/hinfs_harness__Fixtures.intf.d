lib/harness/fixtures.mli: Hinfs_nvmm Hinfs_sim Hinfs_stats Hinfs_vfs
