lib/harness/report.ml: Array Float Fmt Int64 List String
