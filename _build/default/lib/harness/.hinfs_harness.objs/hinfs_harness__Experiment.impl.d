lib/harness/experiment.ml: Fixtures Hinfs_nvmm Hinfs_sim Hinfs_stats Hinfs_trace Hinfs_workloads Option
