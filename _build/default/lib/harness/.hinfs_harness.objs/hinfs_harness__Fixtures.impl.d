lib/harness/fixtures.ml: Hinfs Hinfs_extfs Hinfs_nvmm Hinfs_pmfs Hinfs_sim Hinfs_stats Hinfs_vfs
