lib/harness/experiment.mli: Fixtures Hinfs_nvmm Hinfs_stats Hinfs_trace Hinfs_workloads
