(** Timing and geometry parameters of the emulated platform (paper Table 2).

    Defaults: 200 ns NVMM write latency, 1 GB/s NVMM write bandwidth (1/8 of
    the 8 GB/s DRAM implied by the per-line copy costs), 64 B cachelines,
    4 KB blocks. *)

type t = {
  cacheline_size : int;
  block_size : int;
  nvmm_size : int;
  nvmm_write_ns : int;
  nvmm_write_bandwidth : int;
  dram_write_ns : int;
  dram_read_ns : int;
  mfence_ns : int;
  clflush_issue_ns : int;
  syscall_ns : int;
  block_request_ns : int;
}

val default : t

val validate : t -> t
(** Returns the config unchanged, or raises [Invalid_argument] describing the
    first inconsistency. *)

val cachelines_per_block : t -> int

val nw_slots : t -> int
(** Concurrent NVMM-writer slots implementing the bandwidth cap:
    [N_w = B_NVMM / (1 / L_NVMM)] per the paper's emulator (§5.1). *)

val cachelines_in : t -> addr:int -> len:int -> int
(** Number of distinct cachelines touched by the byte range. *)

val blocks : t -> int
val pp : Format.formatter -> t -> unit
