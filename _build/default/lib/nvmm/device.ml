(* Byte-addressable NVMM device with an explicit CPU-cache model.

   Two layers of state:
   - [persistent]: the NVMM medium itself; survives [crash].
   - [overlay]: cachelines currently dirty in the (volatile) CPU cache.
     Ordinary stores ([write_cached], [set_u*]) land here and are lost on
     [crash] until [clflush]ed. Non-temporal stores ([write_nt]) bypass the
     cache and reach the medium directly, like movnti/clwb streaming copies
     (PMFS's copy_from_user_inatomic_nocache data path).

   Timing: loads cost DRAM speed (the paper assumes symmetric reads); every
   cacheline stored to the medium costs [nvmm_write_ns] and must hold one of
   the N_w bandwidth slots while it streams, reproducing the paper's
   bandwidth emulator. Waiting for a slot is charged to the caller's stats
   category, because that is exactly the foreground/background interference
   the paper discusses (§3.2.1). *)

type t = {
  engine : Hinfs_sim.Engine.t;
  stats : Hinfs_stats.Stats.t;
  config : Config.t;
  persistent : Bytes.t;
  overlay : (int, Bytes.t) Hashtbl.t; (* cacheline index -> line content *)
  bandwidth : Hinfs_sim.Resource.t;
}

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Resource = Hinfs_sim.Resource
module Stats = Hinfs_stats.Stats

let create engine stats config =
  let config = Config.validate config in
  {
    engine;
    stats;
    config;
    persistent = Bytes.make config.Config.nvmm_size '\000';
    overlay = Hashtbl.create 4096;
    bandwidth =
      Resource.create ~name:"nvmm-write-bandwidth"
        ~capacity:(Config.nw_slots config);
  }

let config t = t.config
let size t = t.config.Config.nvmm_size
let stats t = t.stats
let engine t = t.engine
let bandwidth t = t.bandwidth

let line_size t = t.config.Config.cacheline_size

let check_range t ~addr ~len =
  if len < 0 then invalid_arg "Device: negative length";
  if addr < 0 || addr + len > size t then
    Fmt.invalid_arg "Device: range [%d, %d) out of bounds (size %d)" addr
      (addr + len) (size t)

let charge t cat f =
  let t0 = Proc.now () in
  let result = f () in
  Stats.add_time t.stats cat (Int64.sub (Proc.now ()) t0);
  result

(* --- volatile overlay helpers --- *)

let overlay_line t idx =
  match Hashtbl.find_opt t.overlay idx with
  | Some line -> line
  | None ->
    let line = Bytes.create (line_size t) in
    Bytes.blit t.persistent (idx * line_size t) line 0 (line_size t);
    Hashtbl.replace t.overlay idx line;
    line

let dirty_cachelines t = Hashtbl.length t.overlay

let is_dirty_line t idx = Hashtbl.mem t.overlay idx

(* --- timed data-path operations --- *)

let read t ~cat ~addr ~len ~into ~off =
  check_range t ~addr ~len;
  if off < 0 || off + len > Bytes.length into then
    invalid_arg "Device.read: destination range out of bounds";
  if len > 0 then begin
    let lines = Config.cachelines_in t.config ~addr ~len in
    charge t cat (fun () ->
        Proc.delay_int (lines * t.config.Config.dram_read_ns));
    Bytes.blit t.persistent addr into off len;
    (* Patch bytes whose cachelines are dirty in the CPU cache. *)
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      if is_dirty_line t idx then begin
        let line = Hashtbl.find t.overlay idx in
        let line_start = idx * ls in
        let copy_start = max addr line_start in
        let copy_end = min (addr + len) (line_start + ls) in
        Bytes.blit line (copy_start - line_start) into
          (off + copy_start - addr)
          (copy_end - copy_start)
      end
    done;
    Stats.add_nvmm_read t.stats len
  end

let read_alloc t ~cat ~addr ~len =
  let buf = Bytes.create len in
  read t ~cat ~addr ~len ~into:buf ~off:0;
  buf

let write_nt ?(background = false) t ~cat ~addr ~src ~off ~len =
  check_range t ~addr ~len;
  if off < 0 || off + len > Bytes.length src then
    invalid_arg "Device.write_nt: source range out of bounds";
  if len > 0 then begin
    let lines = Config.cachelines_in t.config ~addr ~len in
    charge t cat (fun () ->
        Resource.with_resource t.bandwidth 1 (fun () ->
            Proc.delay_int (lines * t.config.Config.nvmm_write_ns)));
    Bytes.blit src off t.persistent addr len;
    (* A non-temporal store invalidates any stale cached copy of the lines
       it covers (it fully bypasses the cache hierarchy). Partially covered
       lines must merge the new bytes into the cached copy instead. *)
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      match Hashtbl.find_opt t.overlay idx with
      | None -> ()
      | Some line ->
        let line_start = idx * ls in
        if addr <= line_start && line_start + ls <= addr + len then
          Hashtbl.remove t.overlay idx
        else begin
          let copy_start = max addr line_start in
          let copy_end = min (addr + len) (line_start + ls) in
          Bytes.blit src
            (off + copy_start - addr)
            line (copy_start - line_start)
            (copy_end - copy_start)
        end
    done;
    Stats.add_nvmm_written ~background t.stats len
  end

let write_cached t ~cat ~addr ~src ~off ~len =
  check_range t ~addr ~len;
  if off < 0 || off + len > Bytes.length src then
    invalid_arg "Device.write_cached: source range out of bounds";
  if len > 0 then begin
    let lines = Config.cachelines_in t.config ~addr ~len in
    charge t cat (fun () ->
        Proc.delay_int (lines * t.config.Config.dram_write_ns));
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      let line = overlay_line t idx in
      let line_start = idx * ls in
      let copy_start = max addr line_start in
      let copy_end = min (addr + len) (line_start + ls) in
      Bytes.blit src
        (off + copy_start - addr)
        line (copy_start - line_start)
        (copy_end - copy_start)
    done
  end

(* Flush the dirty cachelines intersecting [addr, addr+len) to the medium.
   Clean lines only pay the instruction-issue cost. *)
let clflush ?(background = false) t ~cat ~addr ~len =
  check_range t ~addr ~len;
  if len > 0 then begin
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    let dirty = ref 0 in
    for idx = first to last do
      if is_dirty_line t idx then incr dirty
    done;
    let total_lines = last - first + 1 in
    charge t cat (fun () ->
        Proc.delay_int (total_lines * t.config.Config.clflush_issue_ns);
        if !dirty > 0 then
          Resource.with_resource t.bandwidth 1 (fun () ->
              Proc.delay_int (!dirty * t.config.Config.nvmm_write_ns)));
    for idx = first to last do
      match Hashtbl.find_opt t.overlay idx with
      | None -> ()
      | Some line ->
        Bytes.blit line 0 t.persistent (idx * ls) ls;
        Hashtbl.remove t.overlay idx
    done;
    if !dirty > 0 then
      Stats.add_nvmm_written ~background t.stats (!dirty * ls)
  end

let mfence t ~cat =
  charge t cat (fun () -> Proc.delay_int t.config.Config.mfence_ns)

(* --- small typed accessors (metadata fields) --- *)

(* Loads of metadata words are not individually timed: they are cache-hot
   DRAM-speed accesses whose cost the paper folds into "Others" (which we
   charge per syscall). Stores go through the cached-write path so that
   crash semantics remain exact. *)

let peek_byte t addr =
  let ls = line_size t in
  match Hashtbl.find_opt t.overlay (addr / ls) with
  | Some line -> Bytes.get_uint8 line (addr mod ls)
  | None -> Bytes.get_uint8 t.persistent addr

let peek t ~addr ~len =
  check_range t ~addr ~len;
  let buf = Bytes.create len in
  Bytes.blit t.persistent addr buf 0 len;
  let ls = line_size t in
  if len > 0 then begin
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      if is_dirty_line t idx then begin
        let line = Hashtbl.find t.overlay idx in
        let line_start = idx * ls in
        let copy_start = max addr line_start in
        let copy_end = min (addr + len) (line_start + ls) in
        Bytes.blit line (copy_start - line_start) buf (copy_start - addr)
          (copy_end - copy_start)
      end
    done
  end;
  buf

let peek_persistent t ~addr ~len =
  check_range t ~addr ~len;
  Bytes.sub t.persistent addr len

(* Untimed raw store, for mkfs-time initialisation and tests. Writes the
   medium directly and drops any cached copy. *)
let poke t ~addr ~src ~off ~len =
  check_range t ~addr ~len;
  Bytes.blit src off t.persistent addr len;
  if len > 0 then begin
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      match Hashtbl.find_opt t.overlay idx with
      | None -> ()
      | Some line ->
        let line_start = idx * ls in
        let copy_start = max addr line_start in
        let copy_end = min (addr + len) (line_start + ls) in
        Bytes.blit src
          (off + copy_start - addr)
          line (copy_start - line_start)
          (copy_end - copy_start)
    done
  end

let get_u8 t addr = peek_byte t addr

let get_u16 t addr = Bytes.get_uint16_le (peek t ~addr ~len:2) 0
let get_u32 t addr = Int32.to_int (Bytes.get_int32_le (peek t ~addr ~len:4) 0) land 0xFFFFFFFF
let get_u64 t addr = Bytes.get_int64_le (peek t ~addr ~len:8) 0
let get_int t addr = Int64.to_int (get_u64 t addr)

let set_bytes t ~cat ~addr bytes =
  write_cached t ~cat ~addr ~src:bytes ~off:0 ~len:(Bytes.length bytes)

let set_u8 t ~cat addr v =
  let b = Bytes.create 1 in
  Bytes.set_uint8 b 0 v;
  set_bytes t ~cat ~addr b

let set_u16 t ~cat addr v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 v;
  set_bytes t ~cat ~addr b

let set_u32 t ~cat addr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  set_bytes t ~cat ~addr b

let set_u64 t ~cat addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  set_bytes t ~cat ~addr b

let set_int t ~cat addr v = set_u64 t ~cat addr (Int64.of_int v)

(* --- crash injection --- *)

let crash t = Hashtbl.reset t.overlay

(* Copy of the persistent medium (what a crash would leave). *)
let snapshot t = Bytes.copy t.persistent

(* A fresh device initialised from a snapshot: used by crash-consistency
   tests to mount and inspect the post-crash image while the pre-crash
   simulation keeps running. *)
let of_snapshot engine stats config image =
  let config = Config.validate config in
  if Bytes.length image <> config.Config.nvmm_size then
    invalid_arg "Device.of_snapshot: image size mismatch";
  {
    engine;
    stats;
    config;
    persistent = Bytes.copy image;
    overlay = Hashtbl.create 4096;
    bandwidth =
      Resource.create ~name:"nvmm-write-bandwidth"
        ~capacity:(Config.nw_slots config);
  }

let flush_all_untimed t =
  Hashtbl.iter
    (fun idx line -> Bytes.blit line 0 t.persistent (idx * line_size t) (line_size t))
    t.overlay;
  Hashtbl.reset t.overlay
