(* Timing and geometry parameters of the emulated platform (paper Table 2).

   The paper's emulator adds a configurable delay after each clflush (200 ns
   default) and caps NVMM write bandwidth by limiting the number of
   concurrent NVMM-writing threads to N_w = B_NVMM / (1/L_NVMM) (§5.1). We
   reproduce both: per-cacheline NVMM store latency, plus a slot resource of
   [nw_slots] concurrent writers.

   DRAM-side costs are per-cacheline memcpy costs; 8 ns per 64 B line is
   8 GB/s, which makes the default NVMM write bandwidth (1 GB/s) one eighth
   of DRAM bandwidth exactly as in the paper. *)

type t = {
  cacheline_size : int;  (* bytes; 64 *)
  block_size : int;  (* bytes; 4096 *)
  nvmm_size : int;  (* device capacity in bytes *)
  nvmm_write_ns : int;  (* extra latency per cacheline stored to NVMM *)
  nvmm_write_bandwidth : int;  (* sustained bytes/second *)
  dram_write_ns : int;  (* per-cacheline store to DRAM *)
  dram_read_ns : int;  (* per-cacheline load from DRAM or NVMM *)
  mfence_ns : int;  (* ordering fence *)
  clflush_issue_ns : int;  (* instruction overhead per clflush, on top of
                              the NVMM store it triggers *)
  syscall_ns : int;  (* user/kernel switch + file abstraction per syscall *)
  block_request_ns : int;  (* generic block layer overhead per request *)
}

let default =
  {
    cacheline_size = 64;
    block_size = 4096;
    nvmm_size = 256 * 1024 * 1024;
    nvmm_write_ns = 200;
    nvmm_write_bandwidth = 1_000_000_000;
    dram_write_ns = 8;
    dram_read_ns = 8;
    mfence_ns = 20;
    clflush_issue_ns = 40;
    syscall_ns = 1000;
    block_request_ns = 8000;
  }

let validate t =
  if t.cacheline_size <= 0 || t.cacheline_size land (t.cacheline_size - 1) <> 0
  then invalid_arg "Config: cacheline_size must be a positive power of two";
  if t.block_size <= 0 || t.block_size mod t.cacheline_size <> 0 then
    invalid_arg "Config: block_size must be a multiple of cacheline_size";
  if t.nvmm_size <= 0 || t.nvmm_size mod t.block_size <> 0 then
    invalid_arg "Config: nvmm_size must be a multiple of block_size";
  if t.nvmm_write_ns <= 0 then invalid_arg "Config: nvmm_write_ns must be > 0";
  if t.nvmm_write_bandwidth <= 0 then
    invalid_arg "Config: nvmm_write_bandwidth must be > 0";
  t

let cachelines_per_block t = t.block_size / t.cacheline_size

(* Number of concurrent NVMM-writing slots: N_w = B * L / cacheline, i.e. a
   thread streaming cachelines at 1/L lines per second uses cacheline/L
   bytes/s of bandwidth; N_w such threads saturate B (paper §5.1). *)
let nw_slots t =
  let per_thread_bytes_per_sec =
    float_of_int t.cacheline_size /. (float_of_int t.nvmm_write_ns *. 1e-9)
  in
  max 1
    (int_of_float
       (Float.round
          (float_of_int t.nvmm_write_bandwidth /. per_thread_bytes_per_sec)))

let cachelines_in t ~addr ~len =
  if len <= 0 then 0
  else begin
    let first = addr / t.cacheline_size in
    let last = (addr + len - 1) / t.cacheline_size in
    last - first + 1
  end

let blocks t = t.nvmm_size / t.block_size

let pp ppf t =
  Fmt.pf ppf
    "@[<v>NVMM device: %d MB, block %d B, cacheline %d B@,\
     NVMM write latency %d ns/line, bandwidth %d MB/s (N_w = %d slots)@,\
     DRAM write %d ns/line, read %d ns/line@,\
     mfence %d ns, clflush issue %d ns, syscall %d ns, block request %d ns@]"
    (t.nvmm_size / 1024 / 1024)
    t.block_size t.cacheline_size t.nvmm_write_ns
    (t.nvmm_write_bandwidth / 1_000_000)
    (nw_slots t) t.dram_write_ns t.dram_read_ns t.mfence_ns t.clflush_issue_ns
    t.syscall_ns t.block_request_ns
