lib/nvmm/allocator.ml: Hinfs_structures
