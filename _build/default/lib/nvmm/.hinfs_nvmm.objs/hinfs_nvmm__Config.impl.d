lib/nvmm/config.ml: Float Fmt
