lib/nvmm/device.mli: Bytes Config Hinfs_sim Hinfs_stats
