lib/nvmm/config.mli: Format
