lib/nvmm/allocator.mli:
