lib/nvmm/device.ml: Bytes Config Fmt Hashtbl Hinfs_sim Hinfs_stats Int32 Int64
