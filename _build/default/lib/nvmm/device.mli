(** Byte-addressable NVMM device with an explicit CPU-cache model.

    State is split into the persistent medium and a volatile overlay of
    dirty cachelines (the CPU cache). Ordinary stores land in the overlay
    and are lost on {!crash} until {!clflush}ed; non-temporal stores
    ({!write_nt}) reach the medium directly. Data-path operations consume
    virtual time and must be called from inside a simulation process; every
    cacheline streamed to the medium holds one of the N_w bandwidth slots. *)

type t

val create :
  Hinfs_sim.Engine.t -> Hinfs_stats.Stats.t -> Config.t -> t

val config : t -> Config.t
val size : t -> int
val stats : t -> Hinfs_stats.Stats.t
val engine : t -> Hinfs_sim.Engine.t

val bandwidth : t -> Hinfs_sim.Resource.t
(** The N_w-slot NVMM write bandwidth limiter. *)

(** {1 Timed data-path operations} *)

val read :
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  len:int ->
  into:Bytes.t ->
  off:int ->
  unit
(** Load a byte range (cache-coherent view: dirty overlay lines win). *)

val read_alloc :
  t -> cat:Hinfs_stats.Stats.category -> addr:int -> len:int -> Bytes.t

val write_nt :
  ?background:bool ->
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  src:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** Non-temporal store: persistent immediately, pays NVMM latency and
    bandwidth. [background] attributes the bytes to background writeback. *)

val write_cached :
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  src:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** Ordinary store into the CPU cache: DRAM-speed, volatile until flushed. *)

val clflush :
  ?background:bool ->
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  len:int ->
  unit
(** Flush the dirty cachelines intersecting the range to the medium. Dirty
    lines pay NVMM latency under a bandwidth slot; clean lines only pay the
    issue cost. *)

val mfence : t -> cat:Hinfs_stats.Stats.category -> unit

(** {1 Typed metadata accessors}

    Loads are untimed (cache-hot; the paper folds them into "Others").
    Stores go through the cached-write path so crash semantics stay exact. *)

val get_u8 : t -> int -> int
val get_u16 : t -> int -> int
val get_u32 : t -> int -> int
val get_u64 : t -> int -> int64
val get_int : t -> int -> int
val set_u8 : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_u16 : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_u32 : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_u64 : t -> cat:Hinfs_stats.Stats.category -> int -> int64 -> unit
val set_int : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_bytes : t -> cat:Hinfs_stats.Stats.category -> addr:int -> Bytes.t -> unit

(** {1 Untimed access (setup, recovery inspection, tests)} *)

val peek : t -> addr:int -> len:int -> Bytes.t
(** Coherent view (overlay wins), no time charged. *)

val peek_persistent : t -> addr:int -> len:int -> Bytes.t
(** Medium contents only — what a crash would leave behind. *)

val poke : t -> addr:int -> src:Bytes.t -> off:int -> len:int -> unit
(** Untimed raw store to the medium (mkfs-time initialisation). *)

val dirty_cachelines : t -> int
(** Number of cachelines currently dirty in the CPU cache. *)

val is_dirty_line : t -> int -> bool

val crash : t -> unit
(** Drop the volatile overlay: everything not flushed is lost. *)

val snapshot : t -> Bytes.t
(** Copy of the persistent medium — the image a crash would leave. *)

val of_snapshot :
  Hinfs_sim.Engine.t -> Hinfs_stats.Stats.t -> Config.t -> Bytes.t -> t
(** Fresh device initialised from a {!snapshot} (crash-consistency
    testing). *)

val flush_all_untimed : t -> unit
(** Push the whole overlay to the medium without charging time (test/setup
    helper; real code paths use {!clflush}). *)
