lib/extfs/extfs.ml: Bytes Elayout Hashtbl Hinfs_blockdev Hinfs_journal Hinfs_nvmm Hinfs_pagecache Hinfs_sim Hinfs_stats Hinfs_structures Hinfs_vfs Int32 Int64 List String
