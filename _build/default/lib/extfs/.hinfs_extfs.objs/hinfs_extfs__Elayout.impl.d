lib/extfs/elayout.ml: Bytes Fmt Int32 Int64
