lib/extfs/extfs.mli: Bytes Hinfs_nvmm Hinfs_vfs
