(* On-disk layout of the EXT2/EXT4-like block file system.

   Block map:
     0                         superblock
     [1, 1+journal)            jbd-style journal (used in EXT4 modes)
     [bbm_start, +bbm)         data-block bitmap
     [ibm_start, +ibm)         inode bitmap
     [itable_start, +itable)   inode table (128 B inodes, 1-based)
     [data_start, total)       data + indirect blocks

   The 128-byte inode:
     0      in_use        1   kind          2..3  links
     4..11  size          12..19 mtime      20..23 blocks
     24..71 12 direct block pointers (u32)
     72..75 single-indirect pointer
     76..79 double-indirect pointer *)

let magic = 0x45585446 (* "EXTF" *)
let inode_size = 128
let direct_ptrs = 12

type geometry = {
  block_size : int;
  total_blocks : int;
  journal_start : int;
  journal_blocks : int;
  bbm_start : int;
  bbm_blocks : int;
  ibm_start : int;
  ibm_blocks : int;
  itable_start : int;
  itable_blocks : int;
  data_start : int;
  inode_count : int;
}

let root_ino = 1

let ptrs_per_block geometry = geometry.block_size / 4

(* Addressable file blocks: direct + indirect + double indirect. *)
let max_fblocks geometry =
  let p = ptrs_per_block geometry in
  direct_ptrs + p + (p * p)

let geometry_of ?(journal_blocks = 64) ?(inodes_per_mb = 512) ~block_size
    ~total_blocks () =
  let bits_per_block = block_size * 8 in
  let mb = total_blocks * block_size / (1024 * 1024) in
  let inode_count = max 256 (inodes_per_mb * max 1 mb) in
  let itable_blocks = ((inode_count * inode_size) + block_size - 1) / block_size in
  let inode_count = itable_blocks * block_size / inode_size in
  let ibm_blocks = (inode_count + bits_per_block - 1) / bits_per_block in
  (* Upper bound on data blocks to size the bitmap. *)
  let journal_start = 1 in
  let bbm_start = journal_start + journal_blocks in
  (* Solve for bbm_blocks iteratively (small). *)
  let rec solve bbm_blocks =
    let ibm_start = bbm_start + bbm_blocks in
    let itable_start = ibm_start + ibm_blocks in
    let data_start = itable_start + itable_blocks in
    let data_blocks = total_blocks - data_start in
    if data_blocks <= 0 then
      invalid_arg "Elayout: device too small for metadata regions";
    let needed = (data_blocks + bits_per_block - 1) / bits_per_block in
    if needed > bbm_blocks then solve needed
    else
      {
        block_size;
        total_blocks;
        journal_start;
        journal_blocks;
        bbm_start;
        bbm_blocks;
        ibm_start;
        ibm_blocks;
        itable_start;
        itable_blocks;
        data_start;
        inode_count;
      }
  in
  solve 1

(* --- superblock encode/decode --- *)

let write_superblock_bytes geometry b =
  Bytes.fill b 0 (Bytes.length b) '\000';
  let seti32 off v = Bytes.set_int32_le b off (Int32.of_int v) in
  seti32 0 magic;
  seti32 4 geometry.total_blocks;
  seti32 8 geometry.journal_start;
  seti32 12 geometry.journal_blocks;
  seti32 16 geometry.bbm_start;
  seti32 20 geometry.bbm_blocks;
  seti32 24 geometry.ibm_start;
  seti32 28 geometry.ibm_blocks;
  seti32 32 geometry.itable_start;
  seti32 36 geometry.itable_blocks;
  seti32 40 geometry.data_start;
  seti32 44 geometry.inode_count

let read_superblock_bytes ~block_size b =
  let geti32 off = Int32.to_int (Bytes.get_int32_le b off) in
  if geti32 0 <> magic then None
  else
    Some
      {
        block_size;
        total_blocks = geti32 4;
        journal_start = geti32 8;
        journal_blocks = geti32 12;
        bbm_start = geti32 16;
        bbm_blocks = geti32 20;
        ibm_start = geti32 24;
        ibm_blocks = geti32 28;
        itable_start = geti32 32;
        itable_blocks = geti32 36;
        data_start = geti32 40;
        inode_count = geti32 44;
      }

(* --- inode record accessors (on a raw inode-table block) --- *)

module Irec = struct
  let kind_free = 0
  let kind_regular = 1
  let kind_directory = 2

  (* Byte offset of inode [ino] within its table block. *)
  let block_of geometry ino =
    if ino < 1 || ino > geometry.inode_count then
      Fmt.invalid_arg "Irec: bad ino %d" ino;
    geometry.itable_start + ((ino - 1) / (geometry.block_size / inode_size))

  let offset_of geometry ino =
    (ino - 1) mod (geometry.block_size / inode_size) * inode_size

  let in_use b ~base = Bytes.get_uint8 b (base + 0) = 1
  let set_in_use b ~base v = Bytes.set_uint8 b (base + 0) (if v then 1 else 0)
  let kind b ~base = Bytes.get_uint8 b (base + 1)
  let set_kind b ~base v = Bytes.set_uint8 b (base + 1) v
  let links b ~base = Bytes.get_uint16_le b (base + 2)
  let set_links b ~base v = Bytes.set_uint16_le b (base + 2) v
  let size b ~base = Int64.to_int (Bytes.get_int64_le b (base + 4))
  let set_size b ~base v = Bytes.set_int64_le b (base + 4) (Int64.of_int v)
  let mtime b ~base = Bytes.get_int64_le b (base + 12)
  let set_mtime b ~base v = Bytes.set_int64_le b (base + 12) v
  let blocks b ~base = Int32.to_int (Bytes.get_int32_le b (base + 20))
  let set_blocks b ~base v = Bytes.set_int32_le b (base + 20) (Int32.of_int v)

  let direct b ~base i =
    Int32.to_int (Bytes.get_int32_le b (base + 24 + (4 * i)))

  let set_direct b ~base i v =
    Bytes.set_int32_le b (base + 24 + (4 * i)) (Int32.of_int v)

  let indirect b ~base = Int32.to_int (Bytes.get_int32_le b (base + 72))
  let set_indirect b ~base v = Bytes.set_int32_le b (base + 72) (Int32.of_int v)
  let dindirect b ~base = Int32.to_int (Bytes.get_int32_le b (base + 76))
  let set_dindirect b ~base v = Bytes.set_int32_le b (base + 76) (Int32.of_int v)

  let clear b ~base = Bytes.fill b base inode_size '\000'
end
