lib/trace/trace.ml: Bytes Fmt Hashtbl Hinfs_sim Hinfs_stats Hinfs_vfs Int64 List Option Printf
