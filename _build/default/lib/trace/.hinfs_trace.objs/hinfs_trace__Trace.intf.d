lib/trace/trace.mli: Format Hinfs_stats Hinfs_vfs
