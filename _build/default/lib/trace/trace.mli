(** System-call trace model, synthetic generators, and the replayer
    (paper Table 1's trace workloads; Fig. 2 and Fig. 12).

    The original FIU/LASR/MobiBench traces are not redistributable, so
    each generator synthesises a trace matching the properties the paper
    reports: fsync-byte fractions, I/O sizes, locality, and — crucially
    for the Buffer Benefit Model — stable per-file synchronization
    behaviour (Doc-like burst-then-sync files, Log-like sync-every-write
    files, and never-synced Scratch files). *)

type op =
  | Read of { file : int; off : int; len : int }
  | Write of { file : int; off : int; len : int }
  | Unlink of { file : int }
  | Fsync of { file : int }

type t

val name : t -> string
val length : t -> int
val ops : t -> op list

(** {1 Generators} *)

val usr0 : ?ops:int -> ?seed:int64 -> unit -> t
(** FIU research-desktop trace: write-leaning, strong locality, a moderate
    fsync share. *)

val usr1 : ?ops:int -> ?seed:int64 -> unit -> t
(** Like {!usr0} at a different time: more write-heavy. *)

val lasr : ?ops:int -> ?seed:int64 -> unit -> t
(** Software-development machines: small I/O, {e no fsync at all}. *)

val facebook : ?ops:int -> ?seed:int64 -> unit -> t
(** MobiBench Facebook: SQLite-style sub-1KB writes, nearly every one
    followed by an fsync. *)

val all : ?ops:int -> unit -> t list

(** {1 Replay} *)

type replay_result = {
  r_trace : string;
  r_fs_name : string;
  r_elapsed_ns : int64;
  r_read_ns : int64;
  r_write_ns : int64;
  r_unlink_ns : int64;
  r_fsync_ns : int64;
  r_ops : int;
}

val pp_replay_result : Format.formatter -> replay_result -> unit

val replay :
  stats:Hinfs_stats.Stats.t -> t -> Hinfs_vfs.Vfs.handle -> replay_result
(** Pre-create the file population, quiesce, reset the stats, then execute
    the trace timing each op class (Fig. 12). Runs inside a simulation
    process. *)
