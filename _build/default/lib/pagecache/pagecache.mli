(** OS page cache (buffer cache) over a block device.

    Pages are keyed by device block number. Reads fetch through the block
    layer into a page, then copy to the caller (the double-copy of the
    paper's Fig. 3a); writes copy in and are written back later by fsync,
    eviction pressure, or the pdflush-like daemon. *)

type t
type page

val create :
  ?flush_interval:int64 ->
  ?dirty_ratio:float ->
  ?dirty_background_ratio:float ->
  Hinfs_blockdev.Blockdev.t ->
  capacity_pages:int ->
  t

val block_size : t -> int
val cached_pages : t -> int
val dirty_pages : t -> int
val hits : t -> int
val misses : t -> int
val foreground_writebacks : t -> int

val read :
  t ->
  cat:Hinfs_stats.Stats.category ->
  block:int ->
  off:int ->
  len:int ->
  into:Bytes.t ->
  into_off:int ->
  unit
(** Copy out of the cache (fetching the block on a miss). *)

val write :
  t ->
  cat:Hinfs_stats.Stats.category ->
  block:int ->
  off:int ->
  src:Bytes.t ->
  src_off:int ->
  len:int ->
  unit
(** Copy into the cache and mark the page dirty. Partial writes to uncached
    blocks fetch the block first (fetch-before-write); full-block writes
    skip the fetch. *)

val modify :
  t -> cat:Hinfs_stats.Stats.category -> block:int -> (Bytes.t -> 'a) -> 'a
(** In-place read-modify-write of a block (metadata update); [f] must not
    yield. Marks the page dirty. *)

val with_page :
  t -> cat:Hinfs_stats.Stats.category -> block:int -> (Bytes.t -> 'a) -> 'a
(** Read-only access to a block's cached bytes; [f] must not yield. *)

val zero_block : t -> cat:Hinfs_stats.Stats.category -> block:int -> unit
(** Install an all-zero page for a freshly allocated block (no fetch). *)

val find : t -> int -> page option
val pin : page -> unit
val unpin : page -> unit

val flush_block :
  ?background:bool -> t -> cat:Hinfs_stats.Stats.category -> int -> unit

val flush_blocks :
  ?background:bool -> t -> cat:Hinfs_stats.Stats.category -> int list -> unit

val flush_all : ?background:bool -> t -> cat:Hinfs_stats.Stats.category -> unit

val invalidate : t -> int -> unit
(** Drop a block from the cache without writeback (file deleted). *)

val start_flusher : t -> unit
(** Spawn the pdflush-like background writeback daemon (call from within a
    simulation process). *)

val stop_flusher : t -> unit
