lib/pagecache/pagecache.mli: Bytes Hinfs_blockdev Hinfs_stats
