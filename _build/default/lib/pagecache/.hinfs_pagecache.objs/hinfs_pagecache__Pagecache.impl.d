lib/pagecache/pagecache.ml: Bytes Fun Hinfs_blockdev Hinfs_nvmm Hinfs_sim Hinfs_stats Hinfs_structures Int64 List
