lib/pmfs/pmfs.mli: Bytes Fs_ctx Hinfs_journal Hinfs_nvmm Hinfs_stats Hinfs_vfs Layout
