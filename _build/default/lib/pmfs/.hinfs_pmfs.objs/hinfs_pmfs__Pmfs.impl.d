lib/pmfs/pmfs.ml: Block_tree Bytes Dir Fs_ctx Hinfs_journal Hinfs_nvmm Hinfs_sim Hinfs_stats Hinfs_vfs Int64 Layout
