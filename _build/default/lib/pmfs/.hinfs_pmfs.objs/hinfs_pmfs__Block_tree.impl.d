lib/pmfs/block_tree.ml: Bytes Fs_ctx Hinfs_journal Hinfs_nvmm Hinfs_stats Hinfs_vfs Int64 Layout
