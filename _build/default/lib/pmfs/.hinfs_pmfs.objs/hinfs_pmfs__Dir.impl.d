lib/pmfs/dir.ml: Block_tree Bytes Fs_ctx Hinfs_journal Hinfs_nvmm Hinfs_stats Hinfs_vfs Int32 Layout List String
