lib/pmfs/fs_ctx.ml: Hinfs_journal Hinfs_nvmm Layout
