lib/pmfs/layout.ml: Bytes Fmt Hinfs_nvmm Hinfs_stats Int32 Int64
