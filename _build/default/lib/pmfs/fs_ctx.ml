(* Shared mounted-filesystem context threaded through the PMFS layers. *)

type t = {
  device : Hinfs_nvmm.Device.t;
  geo : Layout.geometry;
  log : Hinfs_journal.Cacheline_log.t;
  balloc : Hinfs_nvmm.Allocator.t; (* data-region block allocator *)
  ialloc : Hinfs_nvmm.Allocator.t; (* inode number allocator (1-based) *)
}

let block_addr t block = block * t.geo.Layout.block_size

let stats t = Hinfs_nvmm.Device.stats t.device
let config t = Hinfs_nvmm.Device.config t.device
