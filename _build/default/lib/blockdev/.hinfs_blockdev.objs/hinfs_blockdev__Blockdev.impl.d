lib/blockdev/blockdev.ml: Bytes Fmt Hinfs_nvmm Hinfs_sim Hinfs_stats Int64
