lib/blockdev/blockdev.mli: Bytes Hinfs_nvmm Hinfs_stats
