(** NVMMBD: RAM-disk-like block device over the NVMM device model (the
    paper's modified brd driver). Every request pays the generic block layer
    overhead; transfers are whole blocks. *)

type t

val create : Hinfs_nvmm.Device.t -> t
val device : t -> Hinfs_nvmm.Device.t
val block_size : t -> int
val nblocks : t -> int
val read_requests : t -> int
val write_requests : t -> int

val read_block :
  t -> cat:Hinfs_stats.Stats.category -> int -> into:Bytes.t -> off:int -> unit

val write_block :
  ?background:bool ->
  t ->
  cat:Hinfs_stats.Stats.category ->
  int ->
  src:Bytes.t ->
  off:int ->
  unit

val peek_block : t -> int -> Bytes.t
(** Untimed coherent read (tests, mkfs). *)

val poke_block : t -> int -> src:Bytes.t -> off:int -> unit
(** Untimed raw write (tests, mkfs). *)
