(** Postmark (Katcher '97): small-file transactions typical of mail and
    news services, reported as elapsed time (Fig. 13). *)

type params = {
  nfiles : int;
  min_size : int;
  max_size : int;
  transactions : int;
  append_size : int;
}

val default_params : params
val make : ?params:params -> unit -> Workload.job
