(** Fileset population, filebench-style: a 16-way directory tree of
    pre-allocated files with a long-tailed size distribution. *)

type t = {
  dir : string;
  nfiles : int;
  mean_size : int;
}

val file_path : t -> int -> string
(** Path of the [i]-th fileset entry. *)

val sample_size : t -> Hinfs_sim.Rng.t -> int
(** Draw a file size around the mean (clamped gamma-like distribution). *)

val write_stream :
  Hinfs_vfs.Vfs.handle ->
  Hinfs_vfs.Vfs.fd ->
  scratch:Bytes.t ->
  size:int ->
  io_size:int ->
  unit
(** Write [size] bytes sequentially in [io_size] chunks. *)

val populate :
  Hinfs_vfs.Vfs.handle -> t -> Hinfs_sim.Rng.t -> io_size:int -> unit
(** Create the directory tree and all files (idempotent on directories). *)

val read_whole :
  Hinfs_vfs.Vfs.handle -> string -> scratch:Bytes.t -> io_size:int -> int
(** Open, read to EOF in chunks, close; returns bytes read. *)
