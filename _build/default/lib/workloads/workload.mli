(** Workload abstraction and the multi-threaded driver. *)

type context = {
  handle : Hinfs_vfs.Vfs.handle;
  rng : Hinfs_sim.Rng.t;
  thread_id : int;
}

(** A rate workload (filebench-style): measured as operations per second
    over a fixed virtual window. *)
type t = {
  name : string;
  setup : Hinfs_vfs.Vfs.handle -> Hinfs_sim.Rng.t -> unit;
  worker : context -> int;  (** one step; returns ops performed *)
}

type result = {
  workload : string;
  fs_name : string;
  threads : int;
  elapsed_ns : int64;
  ops : int;
  ops_per_sec : float;
}

val pp_result : Format.formatter -> result -> unit

(** A fixed job (macro benchmark): measured by elapsed virtual time. *)
type job = {
  job_name : string;
  job_setup : Hinfs_vfs.Vfs.handle -> Hinfs_sim.Rng.t -> unit;
  job_run : Hinfs_vfs.Vfs.handle -> Hinfs_sim.Rng.t -> int;
}

type job_result = {
  job : string;
  jr_fs_name : string;
  jr_elapsed_ns : int64;
  jr_ops : int;
}

val pp_job_result : Format.formatter -> job_result -> unit

val run_job :
  ?seed:int64 ->
  stats:Hinfs_stats.Stats.t ->
  job ->
  Hinfs_vfs.Vfs.handle ->
  job_result
(** Setup, quiesce, reset stats, run to completion. Must run inside a
    simulation process. *)

val run :
  ?seed:int64 ->
  stats:Hinfs_stats.Stats.t ->
  threads:int ->
  duration:int64 ->
  t ->
  Hinfs_vfs.Vfs.handle ->
  result
(** Setup, quiesce, reset stats, then run [threads] workers until the
    virtual deadline. Must run inside a simulation process. *)
