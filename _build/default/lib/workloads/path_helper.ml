(* Tiny path-joining helper shared by the workload generators. *)

let concat dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name
