(* Fileset population, filebench-style: a directory tree of pre-allocated
   files with configurable count and mean size. *)

module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Rng = Hinfs_sim.Rng

type t = {
  dir : string;
  nfiles : int;
  mean_size : int;
}

let file_path t i = Printf.sprintf "%s/d%02d/f%05d" t.dir (i mod 16) i

(* Gamma-ish size distribution around the mean (filebench uses a gamma with
   shape 1.5; a clamped exponential mixture is close enough). *)
let sample_size t rng =
  let u = Rng.float rng in
  let size = int_of_float (float_of_int t.mean_size *. (0.25 +. (1.5 *. u))) in
  max 64 size

(* Write a whole file in [io_size] chunks from a reusable scratch buffer. *)
let write_stream (h : Vfs.handle) fd ~scratch ~size ~io_size =
  let rec loop off =
    if off < size then begin
      let chunk = min io_size (size - off) in
      ignore (h.Vfs.write fd scratch chunk);
      loop (off + chunk)
    end
  in
  loop 0

let populate (h : Vfs.handle) t rng ~io_size =
  (match h.Vfs.exists t.dir with
  | true -> ()
  | false -> h.Vfs.mkdir t.dir);
  for d = 0 to 15 do
    let dir = Printf.sprintf "%s/d%02d" t.dir d in
    if not (h.Vfs.exists dir) then h.Vfs.mkdir dir
  done;
  let scratch = Bytes.make io_size 'p' in
  for i = 0 to t.nfiles - 1 do
    let path = file_path t i in
    let fd = h.Vfs.open_ path Types.creat in
    write_stream h fd ~scratch ~size:(sample_size t rng) ~io_size;
    h.Vfs.close fd
  done

(* Read a whole file in [io_size] chunks; returns bytes read. *)
let read_whole (h : Vfs.handle) path ~scratch ~io_size =
  let fd = h.Vfs.open_ path Types.rdonly in
  let rec loop total =
    let n = h.Vfs.read fd scratch (min io_size (Bytes.length scratch)) in
    if n > 0 then loop (total + n) else total
  in
  let total = loop 0 in
  h.Vfs.close fd;
  total
