(** TPC-C-style OLTP job (the paper runs DBT-2 on PostgreSQL): zipfian
    in-place page updates on a heap file plus a WAL appended and fsynced at
    every commit — which is why its fsync-byte ratio exceeds 90% (Fig. 2). *)

type params = {
  heap_pages : int;
  page_size : int;
  wal_record : int;
  transactions : int;
  updates_per_txn : int;
  checkpoint_every : int;
  zipf_theta : float;
}

val default_params : params
val make : ?params:params -> unit -> Workload.job
