(* The four filebench personalities of Table 1 (micro benchmarks).

   Operation flows follow the filebench models; sizes default to a
   laptop-scale calibration of the paper's setup (the paper uses 5 GB
   filesets and 1 MB mean I/O on a 16 GB machine; we scale the dataset to
   the simulated device and keep every ratio — see EXPERIMENTS.md).

   Each flowop (open, read, append, fsync, close, create, delete, stat)
   counts as one operation, matching filebench's ops/s metric. *)

module Rng = Hinfs_sim.Rng
module Zipf = Hinfs_sim.Zipf
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno

type params = {
  nfiles : int;
  mean_file_size : int;
  io_size : int; (* transfer chunk ("mean I/O size") *)
  append_size : int;
  zipf_theta : float; (* file-popularity skew *)
}

let default_params =
  {
    nfiles = 1024;
    mean_file_size = 64 * 1024;
    io_size = 64 * 1024;
    append_size = 16 * 1024;
    zipf_theta = 0.1 (* fileserver picks files near-uniformly (filebench) *);
  }

(* Swallow races between worker threads (two threads deleting/creating the
   same fileset entry), as filebench does. *)
let attempt f = try f () with Errno.Fs_error _ -> ()

let attempt_ops f = try f () with Errno.Fs_error _ -> 0

let scratch_pool = Hashtbl.create 8

let scratch io_size =
  match Hashtbl.find_opt scratch_pool io_size with
  | Some b -> b
  | None ->
    let b = Bytes.make io_size 'w' in
    Hashtbl.replace scratch_pool io_size b;
    b

let write_whole (h : Vfs.handle) fd ~size ~io_size =
  let buf = scratch (max io_size 1) in
  let rec loop off ops =
    if off >= size then ops
    else begin
      let chunk = min io_size (size - off) in
      ignore (h.Vfs.write fd buf chunk);
      loop (off + chunk) (ops + 1)
    end
  in
  loop 0 0

let read_whole (h : Vfs.handle) fd ~io_size =
  let buf = scratch (max io_size 1) in
  let rec loop ops =
    let n = h.Vfs.read fd buf io_size in
    if n > 0 then loop (ops + 1) else ops
  in
  loop 0

(* --- fileserver: creates, deletes, appends, whole reads and writes --- *)

let fileserver ?(params = default_params) () =
  let fileset =
    { Fileset.dir = "/fileserver"; nfiles = params.nfiles;
      mean_size = params.mean_file_size }
  in
  let zipf = Zipf.create ~n:params.nfiles ~theta:params.zipf_theta in
  {
    Workload.name = "fileserver";
    setup =
      (fun h rng -> Fileset.populate h fileset rng ~io_size:params.io_size);
    worker =
      (fun ctx ->
        let h = ctx.Workload.handle in
        let rng = ctx.Workload.rng in
        let ops = ref 0 in
        let i = Zipf.sample zipf rng in
        let path = Fileset.file_path fileset i in
        (* delete + recreate with a full write *)
        attempt (fun () ->
            h.Vfs.unlink path;
            incr ops);
        attempt (fun () ->
            let fd = h.Vfs.open_ path Types.creat in
            incr ops;
            let size = Fileset.sample_size fileset rng in
            ops := !ops + write_whole h fd ~size ~io_size:params.io_size;
            h.Vfs.close fd;
            incr ops);
        (* append a random amount to another file (filebench's
           appendfilerand: uniform in [1, append_size]) — the ragged tails
           this produces are what CLFW's fetch/flush granularity acts on *)
        let j = Zipf.sample zipf rng in
        attempt (fun () ->
            let fd =
              h.Vfs.open_ (Fileset.file_path fileset j)
                { Types.wronly with Types.append = true }
            in
            incr ops;
            let n = 1 + Rng.int rng params.append_size in
            ignore (h.Vfs.write fd (scratch params.append_size) n);
            incr ops;
            h.Vfs.close fd;
            incr ops);
        (* whole-file read of a third *)
        let k = Zipf.sample zipf rng in
        attempt (fun () ->
            let fd = h.Vfs.open_ (Fileset.file_path fileset k) Types.rdonly in
            incr ops;
            ops := !ops + read_whole h fd ~io_size:params.io_size;
            h.Vfs.close fd;
            incr ops);
        (* stat a fourth *)
        attempt (fun () ->
            ignore (h.Vfs.stat (Fileset.file_path fileset (Zipf.sample zipf rng)));
            incr ops);
        !ops);
  }

(* --- webserver: whole-file reads plus a log append --- *)

let webserver ?(params = { default_params with
                           nfiles = 2048;
                           mean_file_size = 32 * 1024;
                           zipf_theta = 0.8 }) () =
  let fileset =
    { Fileset.dir = "/webserver"; nfiles = params.nfiles;
      mean_size = params.mean_file_size }
  in
  let zipf = Zipf.create ~n:params.nfiles ~theta:params.zipf_theta in
  {
    Workload.name = "webserver";
    setup =
      (fun h rng ->
        Fileset.populate h fileset rng ~io_size:params.io_size;
        if not (h.Vfs.exists "/weblogs") then h.Vfs.mkdir "/weblogs");
    worker =
      (fun ctx ->
        let h = ctx.Workload.handle in
        let rng = ctx.Workload.rng in
        let ops = ref 0 in
        (* 10 open-read-close rounds *)
        for _ = 1 to 10 do
          let i = Zipf.sample zipf rng in
          attempt (fun () ->
              let fd = h.Vfs.open_ (Fileset.file_path fileset i) Types.rdonly in
              incr ops;
              ops := !ops + read_whole h fd ~io_size:params.io_size;
              h.Vfs.close fd;
              incr ops)
        done;
        (* log append *)
        let log = Printf.sprintf "/weblogs/log%d" ctx.Workload.thread_id in
        attempt (fun () ->
            let fd =
              h.Vfs.open_ log { Types.creat with Types.append = true }
            in
            incr ops;
            ignore (h.Vfs.write fd (scratch params.append_size) params.append_size);
            incr ops;
            h.Vfs.close fd;
            incr ops);
        !ops);
  }

(* --- webproxy: short-lived files with strong locality --- *)

let webproxy ?(params = { default_params with
                          nfiles = 4096;
                          mean_file_size = 16 * 1024;
                          zipf_theta = 0.9 }) () =
  let fileset =
    { Fileset.dir = "/webproxy"; nfiles = params.nfiles;
      mean_size = params.mean_file_size }
  in
  let zipf = Zipf.create ~n:params.nfiles ~theta:params.zipf_theta in
  {
    Workload.name = "webproxy";
    setup =
      (fun h rng ->
        Fileset.populate h fileset rng ~io_size:params.io_size;
        if not (h.Vfs.exists "/proxylogs") then h.Vfs.mkdir "/proxylogs");
    worker =
      (fun ctx ->
        let h = ctx.Workload.handle in
        let rng = ctx.Workload.rng in
        let ops = ref 0 in
        (* delete - create/write - close on a hot entry (short-lived) *)
        let i = Zipf.sample zipf rng in
        let path = Fileset.file_path fileset i in
        attempt (fun () ->
            h.Vfs.unlink path;
            incr ops);
        attempt (fun () ->
            let fd = h.Vfs.open_ path Types.creat in
            incr ops;
            let size = Fileset.sample_size fileset rng in
            ops := !ops + write_whole h fd ~size ~io_size:params.io_size;
            h.Vfs.close fd;
            incr ops);
        (* 5 open-read-close rounds *)
        for _ = 1 to 5 do
          let j = Zipf.sample zipf rng in
          attempt (fun () ->
              let fd = h.Vfs.open_ (Fileset.file_path fileset j) Types.rdonly in
              incr ops;
              ops := !ops + read_whole h fd ~io_size:params.io_size;
              h.Vfs.close fd;
              incr ops)
        done;
        (* log append *)
        let log = Printf.sprintf "/proxylogs/log%d" ctx.Workload.thread_id in
        attempt (fun () ->
            let fd = h.Vfs.open_ log { Types.creat with Types.append = true } in
            incr ops;
            ignore (h.Vfs.write fd (scratch params.append_size) params.append_size);
            incr ops;
            h.Vfs.close fd;
            incr ops);
        !ops);
  }

(* --- varmail: create-append-fsync / read-append-fsync (mail server) --- *)

let varmail ?(params = { default_params with
                         nfiles = 4096;
                         mean_file_size = 16 * 1024;
                         zipf_theta = 0.6 }) () =
  let fileset =
    { Fileset.dir = "/varmail"; nfiles = params.nfiles;
      mean_size = params.mean_file_size }
  in
  let zipf = Zipf.create ~n:params.nfiles ~theta:params.zipf_theta in
  {
    Workload.name = "varmail";
    setup =
      (fun h rng -> Fileset.populate h fileset rng ~io_size:params.io_size);
    worker =
      (fun ctx ->
        let h = ctx.Workload.handle in
        let rng = ctx.Workload.rng in
        let ops = ref 0 in
        (* delete a mail *)
        let i = Zipf.sample zipf rng in
        attempt (fun () ->
            h.Vfs.unlink (Fileset.file_path fileset i);
            incr ops);
        (* create - append - fsync - close (mail delivery) *)
        attempt (fun () ->
            let fd =
              h.Vfs.open_ (Fileset.file_path fileset i)
                { Types.creat with Types.append = true }
            in
            incr ops;
            ignore (h.Vfs.write fd (scratch params.append_size) params.append_size);
            incr ops;
            h.Vfs.fsync fd;
            incr ops;
            h.Vfs.close fd;
            incr ops);
        (* open - read whole - append - fsync - close (mail update) *)
        let j = Zipf.sample zipf rng in
        ops :=
          !ops
          + attempt_ops (fun () ->
                let fd =
                  h.Vfs.open_ (Fileset.file_path fileset j)
                    { Types.rdwr with Types.append = true }
                in
                let o = ref 1 in
                o := !o + read_whole h fd ~io_size:params.io_size;
                ignore
                  (h.Vfs.write fd (scratch params.append_size) params.append_size);
                incr o;
                h.Vfs.fsync fd;
                incr o;
                h.Vfs.close fd;
                incr o;
                !o);
        (* open - read whole - close (mail read) *)
        let k = Zipf.sample zipf rng in
        attempt (fun () ->
            let fd = h.Vfs.open_ (Fileset.file_path fileset k) Types.rdonly in
            incr ops;
            ops := !ops + read_whole h fd ~io_size:params.io_size;
            h.Vfs.close fd;
            incr ops);
        !ops);
  }

let all ?params () =
  [
    fileserver ?params ();
    webserver ();
    webproxy ();
    varmail ();
  ]
