(** Kernel-Grep and Kernel-Make jobs over a synthetic source tree (Table 1). *)

type params = {
  nfiles : int;
  dirs : int;
  mean_size : int;
  object_ratio : float;  (** object size / source size *)
}

val default_params : params

val grep : ?params:params -> unit -> Workload.job
(** Read every file completely, searching for an absent pattern. *)

val make_build : ?params:params -> unit -> Workload.job
(** Read each source, write an object file, then "link" everything. *)
