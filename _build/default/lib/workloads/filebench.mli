(** The four filebench personalities of the paper's Table 1.

    Sizes default to the laptop-scale calibration of the paper's setup
    (~64 MB filesets standing in for the paper's 5 GB; every ratio kept). *)

type params = {
  nfiles : int;
  mean_file_size : int;
  io_size : int;  (** transfer chunk — the paper's "mean I/O size" *)
  append_size : int;
  zipf_theta : float;  (** file-popularity skew *)
}

val default_params : params

val fileserver : ?params:params -> unit -> Workload.t
(** Creates, deletes, appends, whole-file reads and writes; near-uniform
    file choice. Almost all writes are lazy-persistent. *)

val webserver : ?params:params -> unit -> Workload.t
(** Read-intensive: 10 open-read-close rounds plus a log append. *)

val webproxy : ?params:params -> unit -> Workload.t
(** Short-lived files with strong locality (zipf 0.9). *)

val varmail : ?params:params -> unit -> Workload.t
(** Mail server: create-append-fsync / read-append-fsync — mostly
    eager-persistent appends. *)

val all : ?params:params -> unit -> Workload.t list
