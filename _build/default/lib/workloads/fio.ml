(* fio-style micro benchmark (the paper's Fig. 1 tool): fixed-size
   read/write mix against a pre-allocated file, sequential or random. *)

module Rng = Hinfs_sim.Rng
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types

type params = {
  file_size : int;
  io_size : int;
  read_fraction : float; (* paper default r:w = 1:2 -> 1/3 reads *)
  random : bool;
  o_sync : bool;
}

let default_params =
  {
    file_size = 16 * 1024 * 1024;
    io_size = 4096;
    read_fraction = 1.0 /. 3.0;
    random = true;
    o_sync = false;
  }

let path = "/fio/data"

let make ?(params = default_params) () =
  let fd_ref = ref None in
  let offset = ref 0 in
  {
    Workload.name = Printf.sprintf "fio-%dB" params.io_size;
    setup =
      (fun h _rng ->
        if not (h.Vfs.exists "/fio") then h.Vfs.mkdir "/fio";
        let fd = h.Vfs.open_ path Types.creat in
        let chunk = Bytes.make 65536 'f' in
        let rec fill off =
          if off < params.file_size then begin
            let n = min 65536 (params.file_size - off) in
            ignore (h.Vfs.write fd chunk n);
            fill (off + n)
          end
        in
        fill 0;
        h.Vfs.close fd;
        (* Reopen with the benchmark flags for the measurement phase. *)
        fd_ref :=
          Some
            (h.Vfs.open_ path
               { Types.rdwr with Types.o_sync = params.o_sync }));
    worker =
      (fun ctx ->
        let h = ctx.Workload.handle in
        let rng = ctx.Workload.rng in
        let fd = Option.get !fd_ref in
        let buf = Bytes.make params.io_size 'x' in
        let max_ios = max 1 (params.file_size / max 1 params.io_size) in
        let off =
          if params.random then Rng.int rng max_ios * params.io_size
          else begin
            let o = !offset in
            offset := (o + params.io_size) mod params.file_size;
            o
          end
        in
        if Rng.float rng < params.read_fraction then
          ignore (h.Vfs.pread fd ~off buf params.io_size)
        else ignore (h.Vfs.pwrite fd ~off buf params.io_size);
        1);
  }
