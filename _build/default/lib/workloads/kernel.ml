(* Kernel-Grep and Kernel-Make (Table 1): jobs over a synthetic source
   tree standing in for the Linux 3.11 kernel sources.

   - grep: read every file completely, searching for an absent pattern
     (read-only, Fig. 13's read-intensive macro benchmark);
   - make: read each source file and write a corresponding object file
     (roughly half the source size), plus a final link write. No fsync —
     everything is lazy-persistent, which is where HiNFS wins. *)

module Rng = Hinfs_sim.Rng
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types

type params = {
  nfiles : int;
  dirs : int;
  mean_size : int;
  object_ratio : float; (* object size / source size *)
}

let default_params =
  { nfiles = 400; dirs = 20; mean_size = 12 * 1024; object_ratio = 0.6 }

let src_dir = "/usr/src"
let obj_dir = "/usr/obj"

let src_path params i =
  Printf.sprintf "%s/dir%02d/file%04d.c" src_dir (i mod params.dirs) i

let obj_path params i =
  Printf.sprintf "%s/dir%02d/file%04d.o" obj_dir (i mod params.dirs) i

(* Deterministic per-file size: a long-tailed distribution around the
   mean (most sources are small, a few are big). *)
let source_size params i =
  let base = params.mean_size / 2 in
  let spread = (i * 2654435761) land 0xFFFF in
  base + (spread * params.mean_size / 32768)

let populate_tree (h : Vfs.handle) params =
  if not (h.Vfs.exists "/usr") then h.Vfs.mkdir "/usr";
  if not (h.Vfs.exists src_dir) then h.Vfs.mkdir src_dir;
  if not (h.Vfs.exists obj_dir) then h.Vfs.mkdir obj_dir;
  for d = 0 to params.dirs - 1 do
    let sd = Printf.sprintf "%s/dir%02d" src_dir d in
    if not (h.Vfs.exists sd) then h.Vfs.mkdir sd;
    let od = Printf.sprintf "%s/dir%02d" obj_dir d in
    if not (h.Vfs.exists od) then h.Vfs.mkdir od
  done;
  let scratch = Bytes.make (params.mean_size * 4) 'c' in
  for i = 0 to params.nfiles - 1 do
    let path = src_path params i in
    if not (h.Vfs.exists path) then begin
      let fd = h.Vfs.open_ path Types.creat in
      ignore (h.Vfs.write fd scratch (source_size params i));
      h.Vfs.close fd
    end
  done

let grep ?(params = default_params) () =
  {
    Workload.job_name = "kernel-grep";
    job_setup = (fun h _rng -> populate_tree h params);
    job_run =
      (fun h _rng ->
        let ops = ref 0 in
        let buf = Bytes.create 65536 in
        for d = 0 to params.dirs - 1 do
          let dir = Printf.sprintf "%s/dir%02d" src_dir d in
          let entries = h.Vfs.readdir dir in
          incr ops;
          List.iter
            (fun (name, _ino) ->
              let fd = h.Vfs.open_ (Path_helper.concat dir name) Types.rdonly in
              let rec scan () =
                (* "search" = read everything; the pattern never matches *)
                if h.Vfs.read fd buf 65536 > 0 then scan ()
              in
              scan ();
              h.Vfs.close fd;
              ops := !ops + 3)
            entries
        done;
        !ops);
  }

let make_build ?(params = default_params) () =
  {
    Workload.job_name = "kernel-make";
    job_setup = (fun h _rng -> populate_tree h params);
    job_run =
      (fun h _rng ->
        let ops = ref 0 in
        let buf = Bytes.create 65536 in
        for i = 0 to params.nfiles - 1 do
          (* "compile": read the source... *)
          let fd = h.Vfs.open_ (src_path params i) Types.rdonly in
          let size = ref 0 in
          let rec scan () =
            let n = h.Vfs.read fd buf 65536 in
            if n > 0 then begin
              size := !size + n;
              scan ()
            end
          in
          scan ();
          h.Vfs.close fd;
          (* ...and write the object file. *)
          let osize =
            max 64 (int_of_float (float_of_int !size *. params.object_ratio))
          in
          let fd =
            h.Vfs.open_ (obj_path params i)
              { Types.creat with Types.truncate = true }
          in
          let rec emit off =
            if off < osize then begin
              let n = min 65536 (osize - off) in
              ignore (h.Vfs.write fd buf n);
              emit (off + n)
            end
          in
          emit 0;
          h.Vfs.close fd;
          ops := !ops + 6
        done;
        (* final "link": concatenate all objects into one image *)
        let fd =
          h.Vfs.open_ "/usr/obj/vmlinux"
            { Types.creat with Types.truncate = true }
        in
        for i = 0 to params.nfiles - 1 do
          let ofd = h.Vfs.open_ (obj_path params i) Types.rdonly in
          let rec pipe () =
            let n = h.Vfs.read ofd buf 65536 in
            if n > 0 then begin
              ignore (h.Vfs.write fd buf n);
              pipe ()
            end
          in
          pipe ();
          h.Vfs.close ofd;
          ops := !ops + 2
        done;
        h.Vfs.close fd;
        !ops + 2);
  }
