(** fio-style micro benchmark (Fig. 1's tool): fixed-size read/write mix
    against a pre-allocated file. *)

type params = {
  file_size : int;
  io_size : int;
  read_fraction : float;  (** paper default r:w = 1:2, i.e. 1/3 *)
  random : bool;
  o_sync : bool;
}

val default_params : params
val make : ?params:params -> unit -> Workload.t
