(* Postmark (Katcher '97): small-file transactions typical of mail and
   news servers. A fixed number of transactions over a pool of small files;
   each transaction pairs (read | append) with (create | delete). Reported
   as elapsed time (Fig. 13). *)

module Rng = Hinfs_sim.Rng
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno

type params = {
  nfiles : int;
  min_size : int;
  max_size : int;
  transactions : int;
  append_size : int;
}

let default_params =
  {
    nfiles = 400;
    min_size = 512;
    max_size = 10 * 1024;
    transactions = 2000;
    append_size = 2048;
  }

let path i = Printf.sprintf "/postmark/p%05d" i

let attempt f = try f () with Errno.Fs_error _ -> ()

let make ?(params = default_params) () =
  let exists = Array.make (params.nfiles * 2) false in
  let sample_size rng =
    params.min_size + Rng.int rng (params.max_size - params.min_size + 1)
  in
  let scratch = Bytes.make params.max_size 'm' in
  let create_file (h : Vfs.handle) rng i =
    let fd = h.Vfs.open_ (path i) { Types.creat with Types.truncate = true } in
    ignore (h.Vfs.write fd scratch (sample_size rng));
    h.Vfs.close fd;
    exists.(i) <- true
  in
  {
    Workload.job_name = "postmark";
    job_setup =
      (fun h rng ->
        Array.fill exists 0 (Array.length exists) false;
        if not (h.Vfs.exists "/postmark") then h.Vfs.mkdir "/postmark";
        for i = 0 to params.nfiles - 1 do
          create_file h rng i
        done);
    job_run =
      (fun h rng ->
        let ops = ref 0 in
        let pick_existing () =
          let rec search tries =
            if tries = 0 then None
            else begin
              let i = Rng.int rng (Array.length exists) in
              if exists.(i) then Some i else search (tries - 1)
            end
          in
          search 64
        in
        for _txn = 1 to params.transactions do
          (* read or append *)
          (match pick_existing () with
          | Some i ->
            if Rng.bool rng then
              attempt (fun () ->
                  let fd = h.Vfs.open_ (path i) Types.rdonly in
                  let rec drain () =
                    if h.Vfs.read fd scratch 4096 > 0 then drain ()
                  in
                  drain ();
                  h.Vfs.close fd;
                  ops := !ops + 3)
            else
              attempt (fun () ->
                  let fd =
                    h.Vfs.open_ (path i) { Types.wronly with Types.append = true }
                  in
                  ignore (h.Vfs.write fd scratch params.append_size);
                  h.Vfs.close fd;
                  ops := !ops + 3)
          | None -> ());
          (* create or delete *)
          if Rng.bool rng then begin
            let i = Rng.int rng (Array.length exists) in
            attempt (fun () ->
                create_file h rng i;
                ops := !ops + 2)
          end
          else begin
            match pick_existing () with
            | Some i ->
              attempt (fun () ->
                  h.Vfs.unlink (path i);
                  exists.(i) <- false;
                  incr ops)
            | None -> ()
          end
        done;
        !ops);
  }
