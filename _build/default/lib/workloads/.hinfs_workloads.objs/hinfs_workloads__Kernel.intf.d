lib/workloads/kernel.mli: Workload
