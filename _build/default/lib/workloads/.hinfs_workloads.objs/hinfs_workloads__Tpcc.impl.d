lib/workloads/tpcc.ml: Bytes Hinfs_sim Hinfs_vfs Workload
