lib/workloads/fileset.mli: Bytes Hinfs_sim Hinfs_vfs
