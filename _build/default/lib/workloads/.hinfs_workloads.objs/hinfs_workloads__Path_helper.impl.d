lib/workloads/path_helper.ml:
