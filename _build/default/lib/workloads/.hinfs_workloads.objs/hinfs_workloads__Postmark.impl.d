lib/workloads/postmark.ml: Array Bytes Hinfs_sim Hinfs_vfs Printf Workload
