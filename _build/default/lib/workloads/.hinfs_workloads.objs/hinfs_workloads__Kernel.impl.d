lib/workloads/kernel.ml: Bytes Hinfs_sim Hinfs_vfs List Path_helper Printf Workload
