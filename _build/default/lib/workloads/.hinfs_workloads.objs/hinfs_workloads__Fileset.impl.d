lib/workloads/fileset.ml: Bytes Hinfs_sim Hinfs_vfs Printf
