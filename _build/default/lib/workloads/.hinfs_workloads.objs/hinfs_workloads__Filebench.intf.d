lib/workloads/filebench.mli: Workload
