lib/workloads/workload.mli: Format Hinfs_sim Hinfs_stats Hinfs_vfs
