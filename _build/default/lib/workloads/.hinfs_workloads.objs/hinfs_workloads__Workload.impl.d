lib/workloads/workload.ml: Fmt Hinfs_sim Hinfs_stats Hinfs_vfs Int64 Printf
