lib/workloads/fio.ml: Bytes Hinfs_sim Hinfs_vfs Option Printf Workload
