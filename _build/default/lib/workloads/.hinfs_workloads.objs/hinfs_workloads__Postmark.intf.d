lib/workloads/postmark.mli: Workload
