lib/workloads/filebench.ml: Bytes Fileset Hashtbl Hinfs_sim Hinfs_vfs Printf Workload
