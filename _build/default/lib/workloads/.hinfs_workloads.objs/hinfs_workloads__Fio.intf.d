lib/workloads/fio.mli: Workload
