(* TPC-C-style OLTP workload (the paper runs DBT-2 on PostgreSQL).

   The database substrate is modelled directly: a heap file of fixed-size
   pages updated in place with zipfian skew, and a write-ahead log that is
   appended and fsynced at every transaction commit — which is what makes
   TPC-C's fsync-byte ratio exceed 90% (Fig. 2). Checkpoints periodically
   fsync the heap. Reported as elapsed time for a fixed transaction count
   (Fig. 13). *)

module Rng = Hinfs_sim.Rng
module Zipf = Hinfs_sim.Zipf
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types

type params = {
  heap_pages : int;
  page_size : int;
  wal_record : int;
  transactions : int;
  updates_per_txn : int;
  checkpoint_every : int;
  zipf_theta : float;
}

let default_params =
  {
    heap_pages = 1024;
    page_size = 8192;
    wal_record = 1024;
    transactions = 1500;
    updates_per_txn = 3;
    checkpoint_every = 128;
    zipf_theta = 0.8;
  }

let make ?(params = default_params) () =
  let heap = "/db/heap" in
  let wal = "/db/wal" in
  let zipf = Zipf.create ~n:params.heap_pages ~theta:params.zipf_theta in
  {
    Workload.job_name = "tpcc";
    job_setup =
      (fun h _rng ->
        if not (h.Vfs.exists "/db") then h.Vfs.mkdir "/db";
        let fd = h.Vfs.open_ heap { Types.creat with Types.truncate = true } in
        let page = Bytes.make params.page_size 'T' in
        for _ = 1 to params.heap_pages do
          ignore (h.Vfs.write fd page params.page_size)
        done;
        h.Vfs.close fd;
        let fd = h.Vfs.open_ wal { Types.creat with Types.truncate = true } in
        h.Vfs.close fd);
    job_run =
      (fun h rng ->
        let ops = ref 0 in
        let heap_fd = h.Vfs.open_ heap Types.rdwr in
        let wal_fd = h.Vfs.open_ wal { Types.wronly with Types.append = true } in
        let page = Bytes.make params.page_size 'U' in
        let record = Bytes.make (params.wal_record * params.updates_per_txn) 'L' in
        for txn = 1 to params.transactions do
          (* read-modify-write of a few hot pages *)
          for _ = 1 to params.updates_per_txn do
            let p = Zipf.sample zipf rng in
            ignore
              (h.Vfs.pread heap_fd ~off:(p * params.page_size) page
                 params.page_size);
            ignore
              (h.Vfs.pwrite heap_fd ~off:(p * params.page_size) page
                 params.page_size);
            ops := !ops + 2
          done;
          (* commit: WAL append + fsync *)
          ignore (h.Vfs.write wal_fd record (Bytes.length record));
          h.Vfs.fsync wal_fd;
          ops := !ops + 2;
          (* periodic checkpoint *)
          if txn mod params.checkpoint_every = 0 then begin
            h.Vfs.fsync heap_fd;
            incr ops
          end
        done;
        h.Vfs.fsync heap_fd;
        h.Vfs.close heap_fd;
        h.Vfs.close wal_fd;
        !ops + 3);
  }
