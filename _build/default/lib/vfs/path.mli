(** Absolute-path handling: validation, splitting, joining.

    The namespace is deliberately simple: absolute slash-separated paths,
    no symlinks, no "." or "..". *)

val is_valid_component : string -> bool

val split : string -> string list
(** ["/a/b/c"] -> [["a"; "b"; "c"]]; ["/"] -> [[]].
    @raise Errno.Fs_error EINVAL on relative paths or bad components. *)

val split_dir : string -> string list * string
(** Directory components and the final component.
    @raise Errno.Fs_error EINVAL when the path has no final component. *)

val join : string list -> string
val concat : string -> string -> string
val basename : string -> string
val dirname : string -> string
