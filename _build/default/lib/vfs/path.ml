(* Absolute-path handling: validation, splitting, joining.

   The namespace is simple on purpose: absolute slash-separated paths, no
   symlinks, no "." or "..". *)

let is_valid_component c =
  String.length c > 0
  && String.length c <= 255
  && c <> "."
  && c <> ".."
  && not (String.contains c '/')

(* "/a/b/c" -> ["a"; "b"; "c"]; "/" -> [] *)
let split path =
  if String.length path = 0 || path.[0] <> '/' then
    Errno.raise_error EINVAL "path %S is not absolute" path;
  let parts = String.split_on_char '/' path in
  let components = List.filter (fun c -> c <> "") parts in
  List.iter
    (fun c ->
      if not (is_valid_component c) then
        Errno.raise_error EINVAL "invalid path component %S in %S" c path)
    components;
  components

(* Split into (directory components, final component). *)
let split_dir path =
  match List.rev (split path) with
  | [] -> Errno.raise_error EINVAL "path %S has no final component" path
  | last :: rev_dir -> (List.rev rev_dir, last)

let join components = "/" ^ String.concat "/" components

let concat dir name =
  if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let basename path = snd (split_dir path)

let dirname path =
  let dir, _ = split_dir path in
  join dir
