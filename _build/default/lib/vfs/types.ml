(* Shared VFS types. *)

type file_kind = Regular | Directory

type stat = {
  ino : int;
  kind : file_kind;
  size : int;
  nlink : int;
  blocks : int; (* data blocks allocated *)
  mtime_ns : int64;
}

type flags = {
  read : bool;
  write : bool;
  create : bool;
  excl : bool; (* with create: fail if the file exists *)
  truncate : bool;
  append : bool;
  o_sync : bool; (* every write is synchronous (eager-persistent case 1) *)
}

let rdonly = {
  read = true;
  write = false;
  create = false;
  excl = false;
  truncate = false;
  append = false;
  o_sync = false;
}

let wronly = { rdonly with read = false; write = true }
let rdwr = { rdonly with write = true }
let creat = { wronly with create = true }

let pp_kind ppf = function
  | Regular -> Fmt.string ppf "regular"
  | Directory -> Fmt.string ppf "directory"
