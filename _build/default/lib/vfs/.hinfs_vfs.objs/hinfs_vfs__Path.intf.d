lib/vfs/path.mli:
