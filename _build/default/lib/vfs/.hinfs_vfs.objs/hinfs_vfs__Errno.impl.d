lib/vfs/errno.ml: Fmt Printexc Printf
