lib/vfs/backend.ml: Bytes Hinfs_nvmm Types
