lib/vfs/vfs.ml: Backend Bytes Errno Hashtbl Hinfs_nvmm Hinfs_sim Hinfs_stats Int64 List Option Path Types
