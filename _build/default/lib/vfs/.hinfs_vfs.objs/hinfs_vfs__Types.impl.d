lib/vfs/types.ml: Fmt
