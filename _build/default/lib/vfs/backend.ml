(* The interface every concrete file system implements.

   Backends are inode-oriented: the VFS does path walking, fd management and
   per-inode locking on top of these operations. All operations run inside a
   simulation process and consume virtual time through the device. *)

module type S = sig
  type t

  val fs_name : t -> string

  val device : t -> Hinfs_nvmm.Device.t
  (** The underlying NVMM device (timing, stats, engine). *)

  val sync_mount : t -> bool
  (** Mounted with the sync option: all writes are eager-persistent. *)

  val root_ino : t -> int

  (** {1 Namespace} *)

  val lookup : t -> dir:int -> string -> int option
  (** Find a name in a directory inode. *)

  val create_file : t -> dir:int -> string -> int
  (** Create an empty regular file; returns its inode number.
      @raise Errno.Fs_error EEXIST / ENOSPC *)

  val mkdir : t -> dir:int -> string -> int

  val unlink : t -> dir:int -> string -> unit
  (** Remove a regular file (drops its data).
      @raise Errno.Fs_error ENOENT / EISDIR *)

  val rmdir : t -> dir:int -> string -> unit
  val rename : t -> src_dir:int -> src:string -> dst_dir:int -> dst:string -> unit
  val readdir : t -> dir:int -> (string * int) list

  (** {1 Inode operations} *)

  val stat : t -> ino:int -> Types.stat

  val read : t -> ino:int -> off:int -> len:int -> into:Bytes.t -> into_off:int -> int
  (** Returns the number of bytes read (0 at or past EOF). *)

  val write :
    t -> ino:int -> off:int -> src:Bytes.t -> src_off:int -> len:int ->
    sync:bool -> int
  (** [sync] marks the write eager-persistent (O_SYNC or sync mount).
      Returns bytes written. @raise Errno.Fs_error ENOSPC *)

  val truncate : t -> ino:int -> size:int -> unit
  val fsync : t -> ino:int -> unit

  (** {1 Memory-mapped I/O} *)

  val mmap : t -> ino:int -> unit
  (** Prepare the inode for direct mapping (HiNFS: flush its buffered blocks
      and pin them Eager-Persistent until {!munmap}). *)

  val munmap : t -> ino:int -> unit
  val msync : t -> ino:int -> unit

  (** {1 Mount lifecycle} *)

  val sync_all : t -> unit
  (** Persist everything buffered (called by unmount and sync()). *)

  val unmount : t -> unit
end
