lib/journal/cacheline_log.ml: Array Bytes Hashtbl Hinfs_nvmm Hinfs_sim Hinfs_stats Int32 Int64 List Queue
