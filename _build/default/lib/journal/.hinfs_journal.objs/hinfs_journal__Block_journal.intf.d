lib/journal/block_journal.mli: Bytes Hinfs_blockdev
