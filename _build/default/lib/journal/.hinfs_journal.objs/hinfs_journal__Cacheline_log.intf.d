lib/journal/cacheline_log.mli: Hinfs_nvmm
