lib/journal/block_journal.ml: Bytes Hashtbl Hinfs_blockdev Hinfs_sim Hinfs_stats Int32 List
