#!/bin/sh
# Tier-1 CI gate: full build, the whole test suite, then the soak and
# smoke aliases re-run explicitly so their output lands in the CI log
# even when dune serves them from cache, and finally the perf-baseline
# determinism check.
#
# The oracle-checked soaks additionally run under a small SOAK_SEED
# matrix: every seed drives a different op mix, crash fence, and fault
# schedule, so three seeds triple the state space each gate covers
# without touching the (seeded, reproducible) default runtest pass.
set -eux

cd "$(dirname "$0")/.."

dune build
dune runtest

dune build @crashmc-recovery --force
dune build @obs-smoke --force

for seed in 4242 1001 90210; do
  SOAK_SEED=$seed dune build @torture-soak --force
  SOAK_SEED=$seed dune build @nvcache-soak --force
  SOAK_SEED=$seed dune build @snapshot-soak --force
  SOAK_SEED=$seed dune build @shard-soak --force
  SOAK_SEED=$seed dune build @chaos-soak --force
  SOAK_SEED=$seed dune build @serve-soak --force
done

sh scripts/bench_check.sh
