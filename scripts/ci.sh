#!/bin/sh
# Tier-1 CI gate: full build, the whole test suite, then the soak and
# smoke aliases re-run explicitly so their output lands in the CI log
# even when dune serves them from cache, and finally the perf-baseline
# determinism check.
set -eux

cd "$(dirname "$0")/.."

dune build
dune runtest

dune build @crashmc-recovery --force
dune build @torture-soak --force
dune build @obs-smoke --force
dune build @nvcache-soak --force
dune build @snapshot-soak --force
dune build @shard-soak --force

sh scripts/bench_check.sh
