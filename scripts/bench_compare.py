#!/usr/bin/env python3
"""Latency threshold gate between two BENCH_HINFS.json artifacts.

Usage: bench_compare.py COMMITTED FRESH

For every experiment (name, fs) present in both artifacts, compare the
p50 and p99 of the core latency classes: the syscall op classes for
workload cells, and the request classes (req.*) for the serving-layer
client-sweep cells (name starting with "serve"). A fresh value more
than THRESHOLD above the committed one is a regression and fails the
gate (exit 1). Improvements and sub-threshold noise pass silently;
experiments present on only one side are listed but do not gate, so
adding a new bench cell never trips the check.
"""
import json
import sys

THRESHOLD = 0.10
OPS = ("op.read", "op.write", "op.open", "op.fsync")
SERVE_OPS = (
    "req.lookup", "req.getattr", "req.read", "req.write",
    "req.create", "req.remove", "req.rename", "req.commit",
)
QUANTILES = ("p50", "p99")


def ops_for(name):
    return SERVE_OPS if name.startswith("serve") else OPS


def cells(artifact):
    out = {}
    for e in artifact.get("experiments", []):
        out[(e["name"], e["fs"])] = e.get("latency_ns", {})
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        committed = cells(json.load(f))
    with open(sys.argv[2]) as f:
        fresh = cells(json.load(f))

    regressions = []
    shared = sorted(set(committed) & set(fresh))
    for key in shared:
        for op in ops_for(key[0]):
            old = committed[key].get(op)
            new = fresh[key].get(op)
            if not old or not new:
                continue
            for q in QUANTILES:
                if q not in old or q not in new:
                    continue
                if new[q] > old[q] * (1.0 + THRESHOLD):
                    regressions.append(
                        "%s/%s %s %s: %d -> %d ns (+%.1f%%, limit +%.0f%%)"
                        % (key[0], key[1], op, q, old[q], new[q],
                           100.0 * (new[q] - old[q]) / old[q],
                           100.0 * THRESHOLD))

    for key in sorted(set(fresh) - set(committed)):
        print("bench_compare: new cell %s/%s (not gated)" % key)
    for key in sorted(set(committed) - set(fresh)):
        print("bench_compare: cell %s/%s gone from fresh baseline "
              "(not gated)" % key)

    if regressions:
        for r in regressions:
            print("bench_compare REGRESSION: " + r, file=sys.stderr)
        return 1
    print("bench_compare OK: %d shared cells within +%.0f%% on %s "
          "(req.* for serve cells) x %s"
          % (len(shared), 100.0 * THRESHOLD, "/".join(OPS),
             "/".join(QUANTILES)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
