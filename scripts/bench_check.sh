#!/bin/sh
# Perf-baseline gate: run the short bench baseline twice and require
#   1. byte-identical BENCH_HINFS.json artifacts (the virtual clock makes
#      the whole pipeline deterministic; any divergence is a bug), and
#   2. the schema's required histogram keys present with nonzero p99s for
#      the core op classes.
set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe

out1=$(mktemp /tmp/bench_hinfs_1.XXXXXX.json)
out2=$(mktemp /tmp/bench_hinfs_2.XXXXXX.json)
trap 'rm -f "$out1" "$out2"' EXIT

BENCH_HINFS_OUT="$out1" dune exec bench/main.exe -- baseline >/dev/null
BENCH_HINFS_OUT="$out2" dune exec bench/main.exe -- baseline >/dev/null

if ! cmp -s "$out1" "$out2"; then
    echo "bench_check FAIL: two seeded baseline runs differ" >&2
    diff "$out1" "$out2" | head -40 >&2 || true
    exit 1
fi

fail=0

# Required structural keys.
for key in '"schema": "hinfs-bench"' '"experiments"' '"latency_ns"' \
           '"phases_ns"' '"counters"' '"throughput_ops_per_sec"'; do
    if ! grep -q "$key" "$out1"; then
        echo "bench_check FAIL: missing $key" >&2
        fail=1
    fi
done

# Required op-class histograms with a present, nonzero p99. Each op class
# appears once per (workload, fs) experiment; require every occurrence to
# carry a positive p99.
for op in 'op.read' 'op.write' 'op.open' 'op.fsync'; do
    if ! grep -q "\"$op\"" "$out1"; then
        echo "bench_check FAIL: no \"$op\" histogram in baseline" >&2
        fail=1
    fi
done

# Any histogram summary whose p99 is absent or zero is a regression: the
# emitter writes p99 unconditionally, so count p99 lines against summary
# blocks and reject literal zeros.
summaries=$(grep -c '"count":' "$out1")
p99s=$(grep -c '"p99":' "$out1")
if [ "$summaries" -ne "$p99s" ]; then
    echo "bench_check FAIL: $summaries summaries but $p99s p99 fields" >&2
    fail=1
fi
# Gauges and wait phases may legitimately sit at zero (an idle queue, an
# uncontended bandwidth slot); syscall latencies must not — every op pays
# at least the syscall overhead. Restrict the zero check to latency_ns.
if awk '/"latency_ns"/,/"phases_ns"/' "$out1" | grep -q '"p99": 0,'; then
    echo "bench_check FAIL: zero p99 in an op-class latency histogram" >&2
    fail=1
fi

# Threshold gate: hold the fresh baseline to the committed artifact. Any
# core op class (op.read / op.write / op.open) whose p50 or p99 grew by
# more than 10% over the committed BENCH_HINFS.json in any shared
# experiment is a perf regression. Experiments present on only one side
# (new cells, retired cells) are reported but do not gate.
if [ -f BENCH_HINFS.json ]; then
    if ! python3 scripts/bench_compare.py BENCH_HINFS.json "$out1"; then
        echo "bench_check FAIL: latency regression vs committed baseline" >&2
        fail=1
    fi
else
    echo "bench_check: no committed BENCH_HINFS.json, skipping threshold gate"
fi

if [ "$fail" -eq 0 ]; then
    echo "bench_check OK: deterministic baseline with complete histograms"
fi
exit "$fail"
